"""Tests for the dynamic MSHR file (Sections 3.2.3, 3.5; Figure 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import CoalescerConfig
from repro.core.mshr import DynamicMSHRFile, InsertOutcome, MSHREntry
from repro.core.request import CoalescedRequest, MemoryRequest, RequestType


def line_request(line, store=False):
    return MemoryRequest(
        addr=line * 64,
        rtype=RequestType.STORE if store else RequestType.LOAD,
    )


def packet(base_line, num=1, store=False):
    rtype = RequestType.STORE if store else RequestType.LOAD
    return CoalescedRequest(
        addr=base_line * 64,
        num_lines=num,
        rtype=rtype,
        constituents=[line_request(base_line + k, store) for k in range(num)],
    )


SERVICE = 300


class TestEntryFields:
    def test_size_field_encoding(self):
        """00 = 64 B, 01 = 128 B, 10 = 256 B (Section 3.2.3)."""
        e = MSHREntry(index=0, num_lines=1)
        assert e.size_field == 0b00
        e.num_lines = 2
        assert e.size_field == 0b01
        e.num_lines = 4
        assert e.size_field == 0b10

    def test_t_bit(self):
        e = MSHREntry(index=0, rtype=RequestType.LOAD)
        assert e.t_bit == 0
        e.rtype = RequestType.STORE
        assert e.t_bit == 1

    def test_subentry_address_equation(self):
        """Equation 2: subentry.addr = entry.addr + lineID * line_size."""
        file = DynamicMSHRFile(CoalescerConfig())
        p = packet(0xA8, num=4)
        outcome, _, entry = file.offer(p, 0, SERVICE)
        assert outcome is InsertOutcome.ALLOCATED
        for sub in entry.subentries:
            assert sub.address_within(entry, 64) == sub.request.addr
            assert 0 <= sub.line_id < 4

    def test_line_id_of_out_of_range(self):
        e = MSHREntry(index=0, addr=0, num_lines=2, valid=True)
        with pytest.raises(ValueError):
            e.line_id_of(5, 64)


class TestAllocation:
    def test_allocate_until_full(self):
        cfg = CoalescerConfig(num_mshrs=4)
        file = DynamicMSHRFile(cfg)
        for i in range(4):
            outcome, _, entry = file.offer(packet(i * 10), i, SERVICE)
            assert outcome is InsertOutcome.ALLOCATED
            assert entry is not None
        outcome, _, entry = file.offer(packet(100), 5, SERVICE)
        assert outcome is InsertOutcome.FULL
        assert entry is None
        assert file.stats.rejected_full == 1

    def test_completion_frees_entries(self):
        cfg = CoalescerConfig(num_mshrs=2)
        file = DynamicMSHRFile(cfg)
        file.offer(packet(0), 0, 100)
        file.offer(packet(10), 0, 200)
        assert file.occupancy() == 2
        done = file.pop_completions(100)
        assert len(done) == 1
        assert done[0].addr == 0
        assert file.occupancy() == 1
        assert file.free_entries() == 1

    def test_completion_carries_subentries(self):
        file = DynamicMSHRFile(CoalescerConfig())
        p = packet(4, num=2)
        file.offer(p, 0, 50)
        done = file.pop_completions(50)
        assert len(done[0].subentries) == 2

    def test_all_idle(self):
        file = DynamicMSHRFile(CoalescerConfig(num_mshrs=2))
        assert file.all_idle
        file.offer(packet(0), 0, 10)
        assert not file.all_idle
        file.pop_completions(10)
        assert file.all_idle

    def test_allocate_direct_bypasses_merging(self):
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(0, num=4), 0, SERVICE)
        entry = file.allocate_direct(packet(0), 0, SERVICE)
        # Even though line 0 is outstanding, direct allocation makes a
        # second entry (bypass path never merges).
        assert entry is not None
        assert file.occupancy() == 2


class TestCaseA:
    """Full-subset merges (Figure 6, case A)."""

    def test_subset_request_merges_entirely(self):
        file = DynamicMSHRFile(CoalescerConfig())
        big = packet(0xA8, num=4)  # blocks 0xA8..0xAB, 256 B
        file.offer(big, 0, SERVICE)
        small = packet(0xA8, num=2)  # blocks 0xA8..0xA9, 128 B
        outcome, rest, entry = file.offer(small, 1, SERVICE)
        assert outcome is InsertOutcome.MERGED
        assert rest == [] and entry is None
        assert file.occupancy() == 1
        assert file.stats.merged_full == 1

    def test_merged_subentries_carry_line_ids(self):
        """The paper's case A: request 1 (128 B @ 0xA8) merges into
        MSHR 1 (256 B @ 0xA8) as subentries with line IDs 00 and 01."""
        file = DynamicMSHRFile(CoalescerConfig())
        _, _, entry = file.offer(packet(0xA8, num=4), 0, SERVICE)
        file.offer(packet(0xA8, num=2), 1, SERVICE)
        merged_ids = sorted(s.line_id for s in entry.subentries[4:])
        assert merged_ids == [0, 1]

    def test_identical_request_merges(self):
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(7), 0, SERVICE)
        outcome, _, _ = file.offer(packet(7), 1, SERVICE)
        assert outcome is InsertOutcome.MERGED

    def test_types_do_not_merge(self):
        """The T bit participates in the comparison: a store to an
        outstanding load line allocates its own entry."""
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(7, store=False), 0, SERVICE)
        outcome, _, _ = file.offer(packet(7, store=True), 1, SERVICE)
        assert outcome is InsertOutcome.ALLOCATED
        assert file.occupancy() == 2


class TestCaseB:
    """Partial-overlap splits (Figure 6, case B)."""

    def test_partial_overlap_splits(self):
        """Request covering 0xA8..0xA9 against an entry holding only
        0xA8: the overlap merges, 0xA9 is re-packed as a remainder."""
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(0xA8, num=1), 0, SERVICE)
        req2 = packet(0xA8, num=2)
        outcome, rest, _ = file.offer(req2, 1, SERVICE)
        assert outcome is InsertOutcome.PARTIAL
        assert len(rest) == 1
        assert rest[0].base_line == 0xA9
        assert rest[0].num_lines == 1
        assert file.stats.merged_partial == 1

    def test_remainder_constituents_follow_their_lines(self):
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(0, num=1), 0, SERVICE)
        req = packet(0, num=4)
        outcome, rest, _ = file.offer(req, 1, SERVICE)
        assert outcome is InsertOutcome.PARTIAL
        rest_lines = sorted(ln for p in rest for ln in p.lines)
        assert rest_lines == [1, 2, 3]
        rest_req_lines = sorted(r.line for p in rest for r in p.constituents)
        assert rest_req_lines == [1, 2, 3]

    def test_overlap_with_multiple_entries(self):
        """A 256 B request overlapping two separate entries merges into
        both and only the uncovered lines remain."""
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(0, num=1), 0, SERVICE)
        file.offer(packet(3, num=1), 0, SERVICE)
        outcome, rest, _ = file.offer(packet(0, num=4), 1, SERVICE)
        assert outcome is InsertOutcome.PARTIAL
        rest_lines = sorted(ln for p in rest for ln in p.lines)
        assert rest_lines == [1, 2]

    def test_remainder_is_aligned(self):
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(1, num=1), 0, SERVICE)
        outcome, rest, _ = file.offer(packet(0, num=4), 1, SERVICE)
        assert outcome is InsertOutcome.PARTIAL
        for p in rest:
            assert p.base_line % p.num_lines == 0


class TestEliminationAccounting:
    def test_full_merge_counts_one_elimination(self):
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(0, num=4), 0, SERVICE)
        file.offer(packet(0, num=2), 1, SERVICE)
        assert file.stats.requests_eliminated == 1

    def test_partial_merge_nets_out_remainders(self):
        file = DynamicMSHRFile(CoalescerConfig())
        file.offer(packet(0, num=1), 0, SERVICE)
        _, rest, _ = file.offer(packet(0, num=2), 1, SERVICE)
        # One request eliminated, one remainder re-issued: net zero.
        assert file.stats.requests_eliminated == 1 - len(rest)


class TestCoalescingDisabled:
    def test_no_merging_when_disabled(self):
        cfg = CoalescerConfig(enable_mshr_coalescing=False)
        file = DynamicMSHRFile(cfg)
        file.offer(packet(0), 0, SERVICE)
        outcome, _, _ = file.offer(packet(0), 1, SERVICE)
        assert outcome is InsertOutcome.ALLOCATED
        assert file.occupancy() == 2


class TestMSHRProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 60),
                st.sampled_from([1, 2, 4]),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_no_line_outstanding_twice_per_type(self, specs):
        """Property: after any offer sequence, no cache line is covered
        by two valid entries of the same type (the whole point of
        second-phase coalescing)."""
        file = DynamicMSHRFile(CoalescerConfig(num_mshrs=64))
        for base, num, store in specs:
            base -= base % num  # natural alignment
            pending = [packet(base, num, store)]
            while pending:
                p = pending.pop()
                outcome, rest, _ = file.offer(p, 0, SERVICE)
                if outcome is InsertOutcome.PARTIAL:
                    pending.extend(rest)
                elif outcome is InsertOutcome.FULL:
                    break
        for rtype in (RequestType.LOAD, RequestType.STORE):
            seen = set()
            for e in file.entries:
                if e.valid and e.rtype is rtype:
                    lines = {e.base_line(64) + k for k in range(e.num_lines)}
                    assert not (lines & seen)
                    seen |= lines

    @given(
        st.lists(
            st.tuples(st.integers(0, 60), st.sampled_from([1, 2, 4])),
            min_size=1,
            max_size=30,
        )
    )
    def test_every_request_line_eventually_covered(self, specs):
        """Property: every offered line is covered by some valid entry
        (possibly via merging) once all offers succeed."""
        file = DynamicMSHRFile(CoalescerConfig(num_mshrs=128))
        wanted = set()
        for base, num in specs:
            base -= base % num
            wanted |= set(range(base, base + num))
            pending = [packet(base, num)]
            while pending:
                p = pending.pop()
                outcome, rest, _ = file.offer(p, 0, SERVICE)
                assert outcome is not InsertOutcome.FULL
                pending.extend(rest)
        covered = set()
        for e in file.entries:
            if e.valid:
                covered |= {e.base_line(64) + k for k in range(e.num_lines)}
        assert wanted <= covered
