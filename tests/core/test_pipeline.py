"""Tests for the pipelined request sorting network (Sections 3.3-3.4, 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import CoalescerConfig
from repro.core.pipeline import PipelinedSortingNetwork, balanced_step_groups
from repro.core.request import MemoryRequest, RequestType


def make_request(line: int, store: bool = False) -> MemoryRequest:
    return MemoryRequest(
        addr=line * 64,
        rtype=RequestType.STORE if store else RequestType.LOAD,
    )


def fence() -> MemoryRequest:
    return MemoryRequest(addr=0, rtype=RequestType.FENCE)


class TestStageGrouping:
    def test_paper_grouping_2_2_3_3(self):
        """Figure 7: the 4-stage pipeline holds steps 1-2/3-4/5-7/8-10."""
        assert balanced_step_groups(10, 4) == [2, 2, 3, 3]

    def test_step_mode_is_one_step_per_stage(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig(pipeline_stages="step"))
        assert pipe.num_pipeline_stages == 10
        assert pipe.stage_steps == [1] * 10

    def test_merge_mode_matches_paper(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig(pipeline_stages="merge"))
        assert pipe.num_pipeline_stages == 4
        assert pipe.stage_steps == [2, 2, 3, 3]

    def test_initiation_interval(self):
        """Section 4.1: an ordered sequence every 3 tau; tau = 4 cycles."""
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        assert pipe.step_cycles == 4
        assert pipe.initiation_interval_cycles == 3 * 4

    def test_full_latency(self):
        """Total pipeline transit is 10 tau regardless of grouping."""
        merge = PipelinedSortingNetwork(CoalescerConfig(pipeline_stages="merge"))
        step = PipelinedSortingNetwork(CoalescerConfig(pipeline_stages="step"))
        assert merge.full_latency_cycles == step.full_latency_cycles == 10 * 4

    def test_request_buffers(self):
        """Section 4.1: 64 buffers for 4 stages, 160 for 10 stages."""
        merge = PipelinedSortingNetwork(CoalescerConfig(pipeline_stages="merge"))
        step = PipelinedSortingNetwork(CoalescerConfig(pipeline_stages="step"))
        assert merge.request_buffers() == 64
        assert step.request_buffers() == 160

    def test_comparator_reuse_savings(self):
        """The merge-grouped pipeline needs far fewer comparators than
        the 63 of the fully unrolled network."""
        merge = PipelinedSortingNetwork(CoalescerConfig(pipeline_stages="merge"))
        assert merge.comparators() < 63
        assert merge.comparators() >= 16  # at least one widest step

    def test_balanced_groups_rejects_zero(self):
        with pytest.raises(ValueError):
            balanced_step_groups(10, 0)


class TestFlushBehaviour:
    def test_full_buffer_flushes(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        out = []
        for i in range(16):
            out += pipe.push(make_request(i), cycle=i)
        assert len(out) == 1
        seq = out[0]
        assert seq.flush_reason == "full"
        assert len(seq.requests) == 16
        assert seq.padding == 0
        assert pipe.pending() == 0

    def test_timeout_flush(self):
        cfg = CoalescerConfig(timeout_cycles=20)
        pipe = PipelinedSortingNetwork(cfg)
        assert pipe.push(make_request(1), cycle=0) == []
        assert pipe.push(make_request(2), cycle=5) == []
        out = pipe.push(make_request(3), cycle=25)
        assert len(out) == 1
        assert out[0].flush_reason == "timeout"
        assert len(out[0].requests) == 2
        assert out[0].padding == 14
        # The triggering request starts a new buffer.
        assert pipe.pending() == 1

    def test_drain_flush(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        pipe.push(make_request(7), cycle=0)
        out = pipe.drain(cycle=100)
        assert len(out) == 1
        assert out[0].flush_reason == "drain"
        assert [r.line for r in out[0].requests] == [7]
        assert pipe.drain(cycle=101) == []

    def test_sorted_output_order(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        lines = [9, 3, 12, 1, 15, 0, 7, 4, 11, 2, 14, 5, 10, 6, 13, 8]
        out = []
        for i, ln in enumerate(lines):
            out += pipe.push(make_request(ln), cycle=i)
        assert [r.line for r in out[0].requests] == sorted(lines)

    def test_loads_sort_before_stores(self):
        """The Type bit (52) separates loads and stores automatically."""
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        out = []
        for i in range(16):
            out += pipe.push(make_request(100 - i, store=(i % 2 == 0)), cycle=i)
        seq = out[0]
        types = [r.is_store for r in seq.requests]
        assert types == sorted(types)  # all False then all True
        loads = [r.line for r in seq.requests if not r.is_store]
        stores = [r.line for r in seq.requests if r.is_store]
        assert loads == sorted(loads)
        assert stores == sorted(stores)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=16))
    def test_padding_never_loses_requests(self, lines):
        """Property: every pushed request appears exactly once in the
        flushed sorted sequence (the Valid bit logic of Section 3.4)."""
        pipe = PipelinedSortingNetwork(CoalescerConfig(timeout_cycles=10**9))
        out = []
        for i, ln in enumerate(lines):
            out += pipe.push(make_request(ln), cycle=i)
        out += pipe.drain(cycle=10**6)
        got = sorted(r.line for seq in out for r in seq.requests)
        assert got == sorted(lines)


class TestFenceHandling:
    def test_fence_flushes_pending_and_takes_slot(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        pipe.push(make_request(4), cycle=0)
        pipe.push(make_request(2), cycle=1)
        out = pipe.push(fence(), cycle=2)
        assert len(out) == 2
        drained, slot = out
        assert drained.flush_reason == "fence"
        assert [r.line for r in drained.requests] == [2, 4]
        assert slot.is_fence
        assert slot.requests == []
        # The fence slot launches after the drained batch.
        assert slot.launch_cycle >= drained.launch_cycle + pipe.initiation_interval_cycles

    def test_fence_on_empty_buffer(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        out = pipe.push(fence(), cycle=0)
        assert len(out) == 1
        assert out[0].is_fence

    def test_requests_after_fence_launch_later(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        slot = pipe.push(fence(), cycle=0)[0]
        out = []
        for i in range(16):
            out += pipe.push(make_request(i), cycle=1 + i)
        assert out[0].launch_cycle >= slot.launch_cycle + pipe.initiation_interval_cycles


class TestTimingModel:
    def test_back_to_back_sequences_respect_interval(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        seqs = []
        for i in range(48):
            seqs += pipe.push(make_request(i % 16), cycle=0)
        assert len(seqs) == 3
        launches = [s.launch_cycle for s in seqs]
        interval = pipe.initiation_interval_cycles
        assert launches[1] - launches[0] >= interval
        assert launches[2] - launches[1] >= interval

    def test_stage_select_reduces_latency(self):
        cfg = CoalescerConfig(stage_select_enabled=True, timeout_cycles=5)
        pipe = PipelinedSortingNetwork(cfg)
        pipe.push(make_request(3), cycle=0)
        pipe.push(make_request(1), cycle=1)
        seq = pipe.drain(cycle=50)[0]
        # 2 requests need only merge stage 1 -> only the first pipeline
        # stage (2 steps) runs.
        assert seq.stages_used == 1
        assert seq.latency_cycles == 2 * pipe.step_cycles

    def test_stage_select_disabled_runs_all_stages(self):
        cfg = CoalescerConfig(stage_select_enabled=False)
        pipe = PipelinedSortingNetwork(cfg)
        pipe.push(make_request(3), cycle=0)
        seq = pipe.drain(cycle=50)[0]
        assert seq.stages_used == 4
        assert seq.latency_cycles == pipe.full_latency_cycles

    def test_stats_accumulate(self):
        pipe = PipelinedSortingNetwork(CoalescerConfig())
        for i in range(32):
            pipe.push(make_request(i % 16), cycle=i)
        s = pipe.stats
        assert s.sequences == 2
        assert s.flushes_full == 2
        assert s.requests_sorted == 32
        assert s.comparator_ops == 2 * 63
        assert s.mean_sort_latency_cycles() > 0
