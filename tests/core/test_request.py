"""Tests for the request object model."""

import pytest

from repro.core.address import CACHE_LINE_SIZE
from repro.core.request import (
    Access,
    CoalescedRequest,
    MemoryRequest,
    RequestType,
)


class TestAccess:
    def test_defaults(self):
        a = Access(addr=0x100, size=8)
        assert a.rtype is RequestType.LOAD
        assert not a.is_store
        assert not a.is_fence

    def test_ids_are_unique(self):
        a, b = Access(addr=0, size=4), Access(addr=0, size=4)
        assert a.access_id != b.access_id

    def test_store(self):
        a = Access(addr=0, size=4, rtype=RequestType.STORE)
        assert a.is_store

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Access(addr=0, size=0)

    def test_fence_needs_no_size(self):
        a = Access(addr=0, size=0, rtype=RequestType.FENCE)
        assert a.is_fence


class TestMemoryRequest:
    def test_line_alignment_enforced(self):
        with pytest.raises(ValueError):
            MemoryRequest(addr=7, rtype=RequestType.LOAD)

    def test_requested_bytes_defaults_to_size(self):
        r = MemoryRequest(addr=64, rtype=RequestType.LOAD)
        assert r.requested_bytes == CACHE_LINE_SIZE

    def test_requested_bytes_kept_when_given(self):
        r = MemoryRequest(addr=64, rtype=RequestType.LOAD, requested_bytes=4)
        assert r.requested_bytes == 4

    def test_line_number(self):
        r = MemoryRequest(addr=640, rtype=RequestType.LOAD)
        assert r.line == 10

    def test_sort_key_orders_loads_before_stores(self):
        load = MemoryRequest(addr=64 * 100, rtype=RequestType.LOAD)
        store = MemoryRequest(addr=0, rtype=RequestType.STORE)
        assert load.sort_key() < store.sort_key()

    def test_fence_has_no_sort_key(self):
        f = MemoryRequest(addr=0, rtype=RequestType.FENCE)
        with pytest.raises(ValueError):
            f.sort_key()

    def test_padding_key_larger_than_any_request(self):
        r = MemoryRequest(addr=(2**46 - 1) * 64, rtype=RequestType.STORE)
        assert MemoryRequest.padding_key() > r.sort_key()


class TestCoalescedRequest:
    def test_valid_line_counts(self):
        for n in (1, 2, 4):
            c = CoalescedRequest(addr=0, num_lines=n, rtype=RequestType.LOAD)
            assert c.size == n * 64

    def test_invalid_line_count(self):
        with pytest.raises(ValueError):
            CoalescedRequest(addr=0, num_lines=3, rtype=RequestType.LOAD)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            CoalescedRequest(addr=100, num_lines=1, rtype=RequestType.LOAD)

    def test_lines_range(self):
        c = CoalescedRequest(addr=256, num_lines=4, rtype=RequestType.LOAD)
        assert list(c.lines) == [4, 5, 6, 7]
        assert c.covers(5)
        assert not c.covers(8)

    def test_size_field(self):
        assert CoalescedRequest(addr=0, num_lines=1, rtype=RequestType.LOAD).size_field == 0
        assert CoalescedRequest(addr=0, num_lines=2, rtype=RequestType.LOAD).size_field == 1
        assert CoalescedRequest(addr=0, num_lines=4, rtype=RequestType.LOAD).size_field == 2

    def test_requested_bytes_sums_constituents(self):
        members = [
            MemoryRequest(addr=0, rtype=RequestType.LOAD, requested_bytes=8),
            MemoryRequest(addr=64, rtype=RequestType.LOAD, requested_bytes=16),
        ]
        c = CoalescedRequest(
            addr=0, num_lines=2, rtype=RequestType.LOAD, constituents=members
        )
        assert c.requested_bytes == 24
