"""Integration tests for the orchestrating MemoryCoalescer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalescer import MemoryCoalescer
from repro.core.config import (
    CoalescerConfig,
    DMC_ONLY_CONFIG,
    MSHR_ONLY_CONFIG,
    UNCOALESCED_CONFIG,
)
from repro.core.request import MemoryRequest, RequestType


def load(line):
    return MemoryRequest(addr=line * 64, rtype=RequestType.LOAD, requested_bytes=8)


def store(line):
    return MemoryRequest(addr=line * 64, rtype=RequestType.STORE, requested_bytes=8)


def fence():
    return MemoryRequest(addr=0, rtype=RequestType.FENCE)


def run(requests, config=None, gap=2, service=300):
    c = MemoryCoalescer(config or CoalescerConfig(), service_time=service)
    cycle = 0
    for r in requests:
        c.push(r, cycle)
        cycle += gap
    c.flush(cycle + 1)
    return c


class TestConservation:
    """Every LLC request must be serviced exactly once -- the
    end-to-end invariant of the whole coalescer."""

    def test_sequential_loads(self):
        n = 256
        c = run([load(i) for i in range(n)])
        assert len(c.serviced) == n
        ids = sorted(s.request.request_id for s in c.serviced)
        assert len(set(ids)) == n

    def test_mixed_loads_and_stores(self):
        rng = random.Random(42)
        reqs = [
            store(rng.randrange(100)) if rng.random() < 0.3 else load(rng.randrange(100))
            for _ in range(500)
        ]
        c = run(reqs)
        assert len(c.serviced) == 500

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.booleans()),
            min_size=1,
            max_size=200,
        ),
        st.integers(1, 20),
    )
    def test_conservation_property(self, items, gap):
        reqs = [store(ln) if s else load(ln) for ln, s in items]
        want = sorted(r.request_id for r in reqs)
        c = run(reqs, gap=gap)
        got = sorted(s.request.request_id for s in c.serviced)
        assert got == want

    def test_completion_after_issue(self):
        c = run([load(i) for i in range(64)])
        for rec in c.issued:
            assert rec.complete_cycle > rec.issue_cycle
        for s in c.serviced:
            assert s.complete_cycle > 0


class TestCoalescingModes:
    def test_two_phase_beats_single_phases_on_contiguous(self):
        """A dense contiguous stream: full coalescer eliminates the
        most requests; both single phases help."""
        reqs = [load(i) for i in range(512)]
        full = run(list(reqs), CoalescerConfig()).stats()
        dmc = run([load(i) for i in range(512)], DMC_ONLY_CONFIG).stats()
        none = run([load(i) for i in range(512)], UNCOALESCED_CONFIG).stats()
        assert full.coalescing_efficiency >= dmc.coalescing_efficiency > 0
        assert none.coalescing_efficiency == 0.0

    def test_uncoalesced_issues_one_packet_per_miss(self):
        n = 128
        c = run([load(i) for i in range(n)], UNCOALESCED_CONFIG)
        assert c.stats().hmc_requests == n
        assert all(r.request.num_lines == 1 for r in c.issued)

    def test_mshr_only_merges_duplicates(self):
        """Repeated misses on an outstanding line merge in the MSHRs
        (conventional coalescing) -- needs the line still in flight."""
        reqs = [load(5) for _ in range(16)]
        c = run(reqs, MSHR_ONLY_CONFIG, gap=1, service=10_000)
        s = c.stats()
        # First miss allocates (after the idle-bypass one), later ones merge.
        assert s.hmc_requests < s.llc_requests
        assert s.coalescing_efficiency > 0.5

    def test_dmc_only_builds_large_packets(self):
        c = run([load(i) for i in range(256)], DMC_ONLY_CONFIG, gap=1)
        sizes = {r.request.num_lines for r in c.issued}
        assert 4 in sizes

    def test_efficiency_ordering_on_locality_trace(self):
        """On a trace with spatial locality the paper's ordering holds:
        two-phase >= DMC-only and two-phase >= MSHR-only."""

        def trace():
            rng = random.Random(7)
            out = []
            for _ in range(200):
                base = rng.randrange(64) * 4
                for k in rng.sample(range(4), 4):
                    out.append(load(base + k))
            return out

        full = run(trace(), CoalescerConfig(), gap=1).stats()
        dmc = run(trace(), DMC_ONLY_CONFIG, gap=1).stats()
        mshr = run(trace(), MSHR_ONLY_CONFIG, gap=1).stats()
        assert full.coalescing_efficiency >= dmc.coalescing_efficiency
        assert full.coalescing_efficiency >= mshr.coalescing_efficiency
        assert full.coalescing_efficiency > 0.3


class TestBypass:
    def test_first_request_bypasses_idle_coalescer(self):
        """Section 4.2: with idle MSHRs and an empty CRQ the raw
        request goes straight to an MSHR."""
        c = MemoryCoalescer(CoalescerConfig(), service_time=300)
        c.push(load(3), 0)
        assert c.stats().bypassed_requests == 1
        assert len(c.issued) == 1
        assert c.issued[0].bypassed

    def test_no_bypass_once_busy(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=10_000)
        c.push(load(3), 0)
        c.push(load(4), 1)
        assert c.stats().bypassed_requests == 1

    def test_bypass_disabled_with_stage_select_off(self):
        cfg = CoalescerConfig(stage_select_enabled=False)
        c = MemoryCoalescer(cfg, service_time=300)
        c.push(load(3), 0)
        assert c.stats().bypassed_requests == 0

    def test_bypass_resumes_after_drain(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=10)
        c.push(load(3), 0)
        c.flush(1000)
        c.push(load(9), 2000)
        assert c.stats().bypassed_requests == 2


class TestFences:
    def test_fence_drains_pipeline(self):
        c = MemoryCoalescer(CoalescerConfig(stage_select_enabled=False), service_time=50)
        c.push(load(1), 0)
        c.push(load(2), 1)
        c.push(fence(), 2)
        # The two buffered requests were flushed by the fence.
        assert c.pipeline.pending() == 0
        c.flush(10_000)
        assert len(c.serviced) == 2

    def test_fence_not_counted_as_llc_request(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=50)
        c.push(fence(), 0)
        assert c.stats().llc_requests == 0


class TestBackPressure:
    def test_tiny_mshr_file_still_drains(self):
        cfg = CoalescerConfig(num_mshrs=2, stage_select_enabled=False)
        c = MemoryCoalescer(cfg, service_time=500)
        for i in range(100):
            c.push(load(i * 3), i)
        c.flush(200)
        assert len(c.serviced) == 100
        assert c.stats().mshr.rejected_full > 0

    def test_stats_consistency(self):
        c = run([load(i % 40) for i in range(300)], gap=1)
        s = c.stats()
        # Every issued packet allocated an entry (bypass included).
        assert s.hmc_requests == s.mshr.allocated
        assert s.requests_eliminated >= 0
        assert 0 <= s.coalescing_efficiency <= 1

    def test_run_trace_helper(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=100)
        stats = c.run_trace((load(i), i * 2) for i in range(64))
        assert stats.llc_requests == 64
        assert len(c.serviced) == 64


class TestLatencyMetrics:
    def test_latency_metrics_populate(self):
        c = run([load(i % 32) for i in range(400)], gap=1, service=400)
        s = c.stats()
        assert s.dmc_latency_ns > 0
        assert s.mean_coalescer_latency_ns > 0

    def test_timeout_increases_latency(self):
        """Figure 14: larger timeouts increase overall latency once
        the sorting wait dominates."""
        def mk(timeout):
            cfg = CoalescerConfig(timeout_cycles=timeout, stage_select_enabled=False)
            reqs = [load(random.Random(1).randrange(1000) + i) for i in range(300)]
            c = run(reqs, cfg, gap=6, service=400)
            return c.stats().mean_coalescer_latency_ns

        assert mk(200) > mk(16)


class TestFenceOrdering:
    """Section 3.4: no request issues to memory until all requests
    preceding a fence have committed."""

    def test_post_fence_issues_after_pre_fence_completions(self):
        c = MemoryCoalescer(
            CoalescerConfig(stage_select_enabled=False), service_time=500
        )
        for i in range(8):
            c.push(load(i), i)
        c.push(fence(), 8)
        for i in range(8):
            c.push(load(100 + i), 9 + i)
        c.flush(10_000)

        pre_lines = set(range(8))
        post_lines = {100 + i for i in range(8)}
        pre_complete = max(
            rec.complete_cycle
            for rec in c.issued
            if set(rec.request.lines) & pre_lines
        )
        post_issue = min(
            rec.issue_cycle
            for rec in c.issued
            if set(rec.request.lines) & post_lines
        )
        assert post_issue >= pre_complete

    def test_everything_still_serviced_across_fences(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=200)
        n = 0
        for burst in range(5):
            for i in range(10):
                c.push(load(burst * 50 + i), burst * 100 + i)
                n += 1
            c.push(fence(), burst * 100 + 20)
        c.flush(100_000)
        assert len(c.serviced) == n

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.integers(0, 60),  # a load to this line
                st.just(-1),         # a fence
            ),
            min_size=2,
            max_size=60,
        )
    )
    def test_fence_barrier_property(self, ops):
        """Property: for every fence, every pre-fence request's HMC
        completion precedes every post-fence request's HMC issue."""
        c = MemoryCoalescer(CoalescerConfig(), service_time=300)
        epoch = 0
        line_epoch = {}
        cycle = 0
        for op in ops:
            if op == -1:
                c.push(fence(), cycle)
                epoch += 1
            else:
                req = load(1000 * epoch + op)
                line_epoch[1000 * epoch + op] = epoch
                c.push(req, cycle)
            cycle += 3
        c.flush(10**6)

        per_epoch_issue = {}
        per_epoch_complete = {}
        for rec in c.issued:
            e = line_epoch.get(rec.request.base_line)
            if e is None:
                continue
            per_epoch_issue.setdefault(e, []).append(rec.issue_cycle)
            per_epoch_complete.setdefault(e, []).append(rec.complete_cycle)
        for e in sorted(per_epoch_issue):
            if e + 1 in per_epoch_issue:
                assert min(per_epoch_issue[e + 1]) >= max(per_epoch_complete[e])
