"""Cycle-accounting and hardware-economics pins for sorter architectures.

The architecture layer (:mod:`repro.core.sorting`) is what
:class:`~repro.core.pipeline.PipelinedSortingNetwork` derives all its
timing from, so these pins are the contract that keeps wide windows
honest: the n=16 single-phase numbers must stay exactly the paper's
(Figure 7), and the two-phase design must trade initiation interval
and latency for comparators and buffers in the direction the
decomposition predicts.
"""

import pytest

from repro.core.config import CoalescerConfig
from repro.core.pipeline import PipelinedSortingNetwork
from repro.core.sorting import (
    SORTER_ARCHITECTURES,
    SinglePhaseArchitecture,
    TwoPhaseArchitecture,
    compiled_architecture,
    two_phase_presort_width,
)
from repro.errors import ConfigError


def test_registry_and_cache():
    assert SORTER_ARCHITECTURES == ("single_phase", "two_phase")
    assert compiled_architecture(16) is compiled_architecture(
        16, "single_phase"
    )
    assert isinstance(compiled_architecture(16), SinglePhaseArchitecture)
    assert isinstance(
        compiled_architecture(64, "two_phase"), TwoPhaseArchitecture
    )
    with pytest.raises(ValueError, match="unknown sorter architecture"):
        compiled_architecture(16, "three_phase")


def test_two_phase_needs_width_four():
    with pytest.raises(ValueError, match="sorter_width >= 4"):
        TwoPhaseArchitecture(2)


@pytest.mark.parametrize(
    "width,expected", [(4, 2), (8, 4), (16, 8), (32, 16), (64, 16), (128, 16)]
)
def test_presort_width_rule(width, expected):
    assert two_phase_presort_width(width) == expected


def test_paper_n16_single_phase_pins():
    """Figure 7's numbers, now derived instead of hard-coded."""
    arch = compiled_architecture(16)
    assert arch.pipeline_stage_steps("merge") == (2, 2, 3, 3)
    assert arch.initiation_interval_steps("merge") == 3
    assert arch.full_latency_steps("merge") == 10
    assert arch.physical_comparators("merge") == 31
    assert arch.request_buffers("merge") == 4 * 16
    assert arch.pipeline_stage_steps("step") == (1,) * 10
    assert arch.physical_comparators("step") == 63
    assert arch.request_buffers("step") == 10 * 16


def test_wide_design_point_pins():
    """The design table the docs quote (merge-mode pipelining)."""
    table = {
        (64, "single_phase"): dict(ii=4, full=21, comps=191, bufs=384),
        (64, "two_phase"): dict(ii=12, full=30, comps=95, bufs=192),
        (128, "single_phase"): dict(ii=4, full=28, comps=443, bufs=896),
        (128, "two_phase"): dict(ii=24, full=49, comps=223, bufs=448),
    }
    for (width, kind), want in table.items():
        arch = compiled_architecture(width, kind)
        assert arch.initiation_interval_steps("merge") == want["ii"]
        assert arch.full_latency_steps("merge") == want["full"]
        assert arch.physical_comparators("merge") == want["comps"]
        assert arch.request_buffers("merge") == want["bufs"]


@pytest.mark.parametrize("width", [8, 16, 32, 64, 128])
@pytest.mark.parametrize("mode", ["merge", "step"])
def test_two_phase_trades_throughput_for_hardware(width, mode):
    single = compiled_architecture(width, "single_phase")
    two = compiled_architecture(width, "two_phase")
    # Cheaper hardware ...
    assert two.physical_comparators(mode) < single.physical_comparators(mode)
    assert two.request_buffers(mode) < single.request_buffers(mode)
    # ... paid for with a slower (or equal) launch cadence and deeper
    # end-to-end latency.
    assert two.initiation_interval_steps(mode) >= (
        single.initiation_interval_steps(mode)
    )
    assert two.full_latency_steps(mode) >= single.full_latency_steps(mode)


@pytest.mark.parametrize("kind", SORTER_ARCHITECTURES)
@pytest.mark.parametrize("mode", ["merge", "step"])
def test_latency_steps_monotone_and_bounded(kind, mode):
    arch = compiled_architecture(64, kind)
    depths = [
        arch.latency_steps(s, mode)
        for s in range(arch.network.num_stages + 1)
    ]
    assert depths[0] == 0
    assert depths == sorted(depths)
    assert depths[-1] == arch.full_latency_steps(mode)


def test_describe_is_self_contained():
    d = compiled_architecture(64, "two_phase").describe()
    assert d["kind"] == "two_phase"
    assert d["width"] == 64
    assert d["presort_width"] == 16
    assert d["runs"] == 4
    assert d["tree_levels"] == 2
    single = compiled_architecture(64).describe()
    assert single["kind"] == "single_phase"
    assert "runs" not in single


def test_pipeline_derives_from_architecture():
    """The pipeline's cycle accounting is the architecture's, scaled."""
    for width, kind in [(16, "single_phase"), (64, "two_phase")]:
        config = CoalescerConfig(sorter_width=width, sorter_arch=kind)
        pipe = PipelinedSortingNetwork(config)
        arch = compiled_architecture(width, kind)
        assert pipe.arch is arch
        assert (
            pipe.initiation_interval_cycles
            == arch.initiation_interval_steps("merge") * pipe.step_cycles
        )
        assert (
            pipe.full_latency_cycles
            == arch.full_latency_steps("merge") * pipe.step_cycles
        )
        assert pipe.request_buffers() == arch.request_buffers("merge")
        assert pipe.comparators() == arch.physical_comparators("merge")


def test_config_rejects_bad_sorter_fields():
    with pytest.raises(ConfigError, match="sorter_arch must be one of"):
        CoalescerConfig(sorter_arch="three_phase")
    with pytest.raises(ConfigError, match="sorter_width >= 4"):
        CoalescerConfig(sorter_width=2, sorter_arch="two_phase")
    with pytest.raises(ConfigError, match="power of two"):
        CoalescerConfig(sorter_width=48)
    # Valid wide points construct cleanly.
    assert CoalescerConfig(sorter_width=128, sorter_arch="two_phase")
    assert CoalescerConfig().sorter_arch == "single_phase"
