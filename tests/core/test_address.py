"""Tests for the extended-address encoding (Section 3.4, Figure 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.address import (
    AddressExtension,
    CACHE_LINE_SIZE,
    INVALID_KEY,
    PHYS_ADDR_BITS,
    PHYS_ADDR_MASK,
    TYPE_BIT,
    VALID_BIT,
    extend_address,
    invalid_key,
    key_address,
    key_is_store,
    key_is_valid,
    line_base,
    line_index,
    line_offset,
    lines_spanned,
)

addresses = st.integers(min_value=0, max_value=PHYS_ADDR_MASK)


class TestBitLayout:
    def test_constants_match_paper(self):
        assert PHYS_ADDR_BITS == 52
        assert TYPE_BIT == 52
        assert VALID_BIT == 53
        assert CACHE_LINE_SIZE == 64

    def test_load_key_is_raw_address(self):
        assert extend_address(0x1234, is_store=False) == 0x1234

    def test_store_key_sets_bit_52(self):
        key = extend_address(0x1234, is_store=True)
        assert key == 0x1234 | (1 << 52)

    def test_every_store_key_exceeds_every_load_key(self):
        max_load = extend_address(PHYS_ADDR_MASK, is_store=False)
        min_store = extend_address(0, is_store=True)
        assert min_store > max_load

    def test_invalid_key_exceeds_every_valid_key(self):
        max_store = extend_address(PHYS_ADDR_MASK, is_store=True)
        assert invalid_key() > max_store

    def test_invalid_key_value(self):
        assert invalid_key() == INVALID_KEY
        assert not key_is_valid(INVALID_KEY)

    def test_address_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            extend_address(1 << 52, is_store=False)
        with pytest.raises(ValueError):
            extend_address(-1, is_store=True)


class TestKeyRoundTrip:
    @given(addresses, st.booleans())
    def test_encode_decode_roundtrip(self, addr, is_store):
        key = extend_address(addr, is_store=is_store)
        assert key_address(key) == addr
        assert key_is_store(key) is is_store
        assert key_is_valid(key)

    @given(addresses, st.booleans())
    def test_dataclass_roundtrip(self, addr, is_store):
        key = extend_address(addr, is_store=is_store)
        ext = AddressExtension.decode(key)
        assert ext.address == addr
        assert ext.is_store is is_store
        assert ext.is_valid
        assert ext.encode() == key

    def test_invalid_decode(self):
        ext = AddressExtension.decode(invalid_key())
        assert not ext.is_valid
        assert ext.encode() == invalid_key()

    @given(addresses, st.booleans())
    def test_type_separation_is_total_order(self, addr, is_store):
        """Sorting keys must order all loads before all stores."""
        load = extend_address(addr, is_store=False)
        store = extend_address(addr, is_store=True)
        assert load < store


class TestLineArithmetic:
    @given(addresses)
    def test_line_base_is_aligned(self, addr):
        base = line_base(addr)
        assert base % CACHE_LINE_SIZE == 0
        assert base <= addr < base + CACHE_LINE_SIZE

    @given(addresses)
    def test_line_decomposition(self, addr):
        assert line_index(addr) * CACHE_LINE_SIZE + line_offset(addr) == addr

    def test_lines_spanned_single(self):
        assert lines_spanned(0, 1) == 1
        assert lines_spanned(63, 1) == 1
        assert lines_spanned(0, 64) == 1

    def test_lines_spanned_straddles(self):
        assert lines_spanned(63, 2) == 2
        assert lines_spanned(60, 8) == 2
        assert lines_spanned(0, 65) == 2
        assert lines_spanned(0, 256) == 4

    def test_lines_spanned_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lines_spanned(0, 0)

    @given(addresses, st.integers(min_value=1, max_value=256))
    def test_lines_spanned_bounds(self, addr, size):
        n = lines_spanned(addr, size)
        assert 1 <= n <= (size // CACHE_LINE_SIZE) + 2
        # The span covers the access exactly.
        first = line_index(addr)
        last = line_index(addr + size - 1)
        assert n == last - first + 1

    def test_custom_line_size(self):
        assert line_base(300, line_size=256) == 256
        assert line_index(300, line_size=256) == 1
        assert line_offset(300, line_size=256) == 44
