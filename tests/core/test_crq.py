"""Tests for the coalesced request queue (Sections 3.2.2, 5.3.3)."""

import pytest

from repro.core.crq import CoalescedRequestQueue
from repro.core.request import CoalescedRequest, RequestType


def packet(line=0, num=1, store=False):
    return CoalescedRequest(
        addr=line * 64,
        num_lines=num,
        rtype=RequestType.STORE if store else RequestType.LOAD,
    )


class TestFIFO:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            CoalescedRequestQueue(0)

    def test_push_pop_order(self):
        q = CoalescedRequestQueue(4)
        pkts = [packet(i * 4) for i in range(3)]
        for i, p in enumerate(pkts):
            assert q.push(p, cycle=i)
        assert [q.pop() for _ in range(3)] == pkts
        assert q.is_empty

    def test_peek_does_not_remove(self):
        q = CoalescedRequestQueue(2)
        p = packet()
        q.push(p, 0)
        assert q.peek() is p
        assert len(q) == 1

    def test_peek_empty(self):
        assert CoalescedRequestQueue(2).peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CoalescedRequestQueue(2).pop()

    def test_backpressure_when_full(self):
        q = CoalescedRequestQueue(2)
        assert q.push(packet(0), 0)
        assert q.push(packet(4), 1)
        assert q.is_full
        assert not q.push(packet(8), 2)
        assert len(q) == 2

    def test_remove_specific(self):
        q = CoalescedRequestQueue(4)
        a, b, c = packet(0), packet(4), packet(8)
        for i, p in enumerate((a, b, c)):
            q.push(p, i)
        q.remove(b)
        assert [q.pop(), q.pop()] == [a, c]

    def test_remove_missing_raises(self):
        q = CoalescedRequestQueue(4)
        q.push(packet(0), 0)
        with pytest.raises(ValueError):
            q.remove(packet(4))

    def test_replace_preserves_position(self):
        q = CoalescedRequestQueue(8)
        a, b, c = packet(0), packet(4, num=2), packet(8)
        for i, p in enumerate((a, b, c)):
            q.push(p, i)
        b1, b2 = packet(4), packet(5)
        q.replace(b, [b1, b2])
        assert [q.pop() for _ in range(4)] == [a, b1, b2, c]

    def test_replace_missing_raises(self):
        q = CoalescedRequestQueue(4)
        with pytest.raises(ValueError):
            q.replace(packet(0), [packet(4)])


class TestFillAccounting:
    def test_fill_time_spans_depth_pushes(self):
        q = CoalescedRequestQueue(3)
        q.push(packet(0), cycle=10)
        q.push(packet(4), cycle=14)
        q.push(packet(8), cycle=22)
        assert q.stats.fills == 1
        assert q.stats.total_fill_cycles == 12  # 22 - 10

    def test_fill_windows_ignore_drain(self):
        """The metric measures packet *production* time: popping while
        the window accumulates must not reset it."""
        q = CoalescedRequestQueue(2)
        q.push(packet(0), cycle=0)
        q.pop()
        q.push(packet(4), cycle=100)
        assert q.stats.fills == 1
        assert q.stats.total_fill_cycles == 100

    def test_mean_fill(self):
        q = CoalescedRequestQueue(2)
        q.push(packet(0), 0)
        q.push(packet(4), 10)
        q.pop(), q.pop()
        q.push(packet(8), 20)
        q.push(packet(12), 24)
        assert q.stats.fills == 2
        assert q.stats.mean_fill_cycles() == pytest.approx(7.0)

    def test_mean_fill_no_fills(self):
        assert CoalescedRequestQueue(4).stats.mean_fill_cycles() == 0.0

    def test_max_occupancy(self):
        q = CoalescedRequestQueue(8)
        for i in range(5):
            q.push(packet(i * 4), i)
        q.pop()
        assert q.stats.max_occupancy == 5

    def test_push_pop_counters(self):
        q = CoalescedRequestQueue(4)
        q.push(packet(0), 0)
        q.push(packet(4), 1)
        q.pop()
        assert q.stats.pushes == 2
        assert q.stats.pops == 1
