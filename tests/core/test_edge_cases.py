"""Failure injection and edge cases across the coalescer stack
(DESIGN.md section 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalescer import MemoryCoalescer
from repro.core.config import CoalescerConfig
from repro.core.request import MemoryRequest, RequestType


def load(line):
    return MemoryRequest(addr=line * 64, rtype=RequestType.LOAD, requested_bytes=8)


def fence():
    return MemoryRequest(addr=0, rtype=RequestType.FENCE)


class TestEmptyAndTiny:
    def test_empty_trace(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=100)
        c.flush(0)
        s = c.stats()
        assert s.llc_requests == 0
        assert s.hmc_requests == 0
        assert s.coalescing_efficiency == 0.0
        assert len(c.serviced) == 0

    def test_single_request(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=100)
        c.push(load(7), 0)
        c.flush(1)
        assert len(c.serviced) == 1
        assert c.stats().hmc_requests == 1

    def test_only_fences(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=100)
        for i in range(5):
            c.push(fence(), i)
        c.flush(100)
        assert c.stats().llc_requests == 0
        assert c.stats().hmc_requests == 0

    def test_flush_twice_is_idempotent(self):
        c = MemoryCoalescer(CoalescerConfig(), service_time=100)
        c.push(load(1), 0)
        c.flush(10)
        before = c.stats().hmc_requests
        c.flush(10_000)
        assert c.stats().hmc_requests == before
        assert len(c.serviced) == 1


class TestExtremeConfigs:
    def test_single_mshr(self):
        cfg = CoalescerConfig(num_mshrs=1, stage_select_enabled=False)
        c = MemoryCoalescer(cfg, service_time=300)
        for i in range(64):
            c.push(load(i * 2), i)
        c.flush(100)
        assert len(c.serviced) == 64
        # One entry at a time: issues serialize.
        issues = sorted(r.issue_cycle for r in c.issued)
        for a, b in zip(issues, issues[1:]):
            assert b >= a

    def test_minimal_sorter_width(self):
        # Bypass disabled so windows start at line 0: [0,1], [2,3], ...
        # are aligned pairs a 2-wide sorter can coalesce.  (With the
        # bypass on, the windows shift to [1,2], [3,4], ... -- pairs
        # that straddle alignment boundaries and legally cannot merge.)
        cfg = CoalescerConfig(sorter_width=2, stage_select_enabled=False)
        c = MemoryCoalescer(cfg, service_time=200)
        for i in range(40):
            c.push(load(i), i)
        c.flush(100)
        assert len(c.serviced) == 40
        assert c.stats().coalescing_efficiency == pytest.approx(0.5)

    def test_zero_timeout_always_flushes(self):
        cfg = CoalescerConfig(timeout_cycles=0, stage_select_enabled=False)
        c = MemoryCoalescer(cfg, service_time=200)
        for i in range(32):
            c.push(load(i), i * 5)
        c.flush(1000)
        assert len(c.serviced) == 32
        # Every arrival finds the previous request timed out.
        assert c.pipeline.stats.flushes_timeout > 20

    def test_huge_timeout_batches_full_windows(self):
        cfg = CoalescerConfig(timeout_cycles=10**9, stage_select_enabled=False)
        c = MemoryCoalescer(cfg, service_time=200)
        for i in range(64):
            c.push(load(i), i)
        c.flush(10**9 + 10)
        assert c.pipeline.stats.flushes_timeout == 0
        assert c.pipeline.stats.flushes_full == 4

    def test_crq_depth_one(self):
        cfg = CoalescerConfig(crq_depth=1, stage_select_enabled=False)
        c = MemoryCoalescer(cfg, service_time=100)
        for i in range(48):
            c.push(load(i * 2), i)
        c.flush(10_000)
        assert len(c.serviced) == 48


class TestMonotoneTime:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=100))
    def test_issue_cycles_never_regress_service_order(self, gaps):
        """Property: completions never precede their issues, and
        serviced notifications are consistent with entry completions."""
        c = MemoryCoalescer(CoalescerConfig(), service_time=150)
        cycle = 0
        for i, g in enumerate(gaps):
            c.push(load(i % 30), cycle)
            cycle += g
        c.flush(cycle + 1)
        for rec in c.issued:
            assert rec.complete_cycle > rec.issue_cycle
        assert len(c.serviced) == len(gaps)

    def test_non_monotone_push_cycles_tolerated(self):
        """The coalescer clamps, never crashes, if a caller hands it
        slightly out-of-order timestamps."""
        c = MemoryCoalescer(CoalescerConfig(), service_time=100)
        c.push(load(0), 100)
        c.push(load(1), 90)  # earlier than the previous push
        c.flush(10_000)
        assert len(c.serviced) == 2


class TestRequestValidation:
    def test_misaligned_request_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MemoryRequest(addr=3, rtype=RequestType.LOAD)

    def test_oversized_address_rejected_at_sort(self):
        r = MemoryRequest(addr=(1 << 52), rtype=RequestType.LOAD)
        with pytest.raises(ValueError):
            r.sort_key()

    def test_requested_bytes_never_negative(self):
        r = MemoryRequest(addr=64, rtype=RequestType.LOAD, requested_bytes=-5)
        assert r.requested_bytes == 64  # clamped to the line size
