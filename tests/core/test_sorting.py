"""Tests for the Batcher odd-even mergesort network (Section 3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sorting import (
    OddEvenMergesortNetwork,
    flatten_steps,
    odd_even_merge_sort_schedule,
)


class TestScheduleStructure:
    def test_rejects_non_power_of_two(self):
        for bad in (0, 1, 3, 6, 12, 17):
            with pytest.raises(ValueError):
                odd_even_merge_sort_schedule(bad)

    @pytest.mark.parametrize("n,stages,steps", [(2, 1, 1), (4, 2, 3), (8, 3, 6), (16, 4, 10), (32, 5, 15)])
    def test_stage_and_step_counts(self, n, stages, steps):
        """Depth is (log^2 n + log n) / 2 steps across log n stages."""
        sched = odd_even_merge_sort_schedule(n)
        assert len(sched) == stages
        assert len(flatten_steps(sched)) == steps

    def test_paper_16_input_network(self):
        """The n=16 network of Figure 4: 4 stages, 10 steps, 63 comparators."""
        net = OddEvenMergesortNetwork(16)
        assert net.num_stages == 4
        assert net.num_steps == 10
        assert net.num_comparators == 63
        assert net.shape().steps_per_stage == (1, 2, 3, 4)

    def test_stage_s_has_s_steps(self):
        net = OddEvenMergesortNetwork(64)
        assert [len(stage) for stage in net.stages] == [1, 2, 3, 4, 5, 6]

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_steps_are_parallel_time_slots(self, n):
        """No wire is touched twice within a step (validate() checks)."""
        OddEvenMergesortNetwork(n).validate()

    def test_first_stage_sorts_adjacent_pairs(self):
        net = OddEvenMergesortNetwork(16)
        assert net.stages[0][0] == [(2 * i, 2 * i + 1) for i in range(8)]


class TestSortingCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_sorts_reverse_sequence(self, n):
        net = OddEvenMergesortNetwork(n)
        assert net.apply(list(range(n, 0, -1))) == list(range(1, n + 1))

    @given(st.lists(st.integers(min_value=0, max_value=2**54), min_size=16, max_size=16))
    def test_sorts_any_16_keys(self, keys):
        net = OddEvenMergesortNetwork(16)
        assert net.apply(keys) == sorted(keys)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=8, max_size=8))
    def test_sorts_any_8_keys(self, keys):
        net = OddEvenMergesortNetwork(8)
        assert net.apply(keys) == sorted(keys)

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=32, max_size=32))
    def test_sorts_with_many_duplicates(self, keys):
        net = OddEvenMergesortNetwork(32)
        assert net.apply(keys) == sorted(keys)

    def test_zero_one_principle_exhaustive_n8(self):
        """A comparator network sorts all inputs iff it sorts all 0/1
        inputs (Knuth's 0-1 principle) -- check all 256 for n=8."""
        net = OddEvenMergesortNetwork(8)
        for bits in range(256):
            vec = [(bits >> i) & 1 for i in range(8)]
            assert net.apply(vec) == sorted(vec)

    def test_wrong_width_rejected(self):
        net = OddEvenMergesortNetwork(16)
        with pytest.raises(ValueError):
            net.apply([1] * 8)
        with pytest.raises(ValueError):
            net.apply([1] * 32)


class TestStageSelect:
    """The stage-select optimization (Section 3.3)."""

    def test_required_stages_thresholds(self):
        net = OddEvenMergesortNetwork(16)
        assert net.required_stages(0) == 0
        assert net.required_stages(1) == 0
        assert net.required_stages(2) == 1
        assert net.required_stages(3) == 2
        assert net.required_stages(4) == 2
        assert net.required_stages(5) == 3
        assert net.required_stages(8) == 3
        assert net.required_stages(9) == 4
        assert net.required_stages(16) == 4

    def test_required_stages_bounds(self):
        net = OddEvenMergesortNetwork(16)
        with pytest.raises(ValueError):
            net.required_stages(17)
        with pytest.raises(ValueError):
            net.required_stages(-1)

    @given(
        st.integers(min_value=1, max_value=16),
        st.data(),
    )
    def test_prefix_stages_sort_padded_sequences(self, count, data):
        """With count valid keys followed by maximal padding, running
        only required_stages(count) stages fully sorts the sequence."""
        net = OddEvenMergesortNetwork(16)
        pad = 2**54 - 1
        keys = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=pad - 1),
                min_size=count,
                max_size=count,
            )
        )
        padded = keys + [pad] * (16 - count)
        stages = net.required_stages(count)
        result = net.apply_prefix_stages(padded, stages)
        assert result == sorted(padded)

    def test_prefix_zero_stages_is_identity(self):
        net = OddEvenMergesortNetwork(16)
        keys = list(range(16, 0, -1))
        assert net.apply_prefix_stages(keys, 0) == keys

    def test_count_operations_monotone(self):
        net = OddEvenMergesortNetwork(16)
        ops = [net.count_operations(s) for s in range(5)]
        assert ops[0] == 0
        assert ops == sorted(ops)
        assert ops[4] == 63


class TestApplyItems:
    def test_sorts_items_by_key(self):
        net = OddEvenMergesortNetwork(4)
        items = ["dd", "c", "bbb", "a"]
        out = net.apply_items(items, key=len)
        assert out == ["c", "a", "dd", "bbb"] or [len(x) for x in out] == [1, 1, 2, 3]

    def test_stability_for_equal_keys(self):
        """Compare-exchange fires only on strict >, so equal-key items
        keep their relative order."""
        net = OddEvenMergesortNetwork(8)
        items = [(1, i) for i in range(8)]
        out = net.apply_items(items, key=lambda t: t[0])
        assert out == items

    @given(st.lists(st.integers(0, 100), min_size=16, max_size=16))
    def test_items_match_key_sort(self, keys):
        net = OddEvenMergesortNetwork(16)
        items = list(enumerate(keys))
        out = net.apply_items(items, key=lambda t: t[1])
        assert [k for _, k in out] == sorted(keys)
        # It is a permutation of the input items.
        assert sorted(out) == sorted(items)


class TestBitonicNetwork:
    """The Section 3.3 comparison network."""

    def test_comparator_counts_exceed_odd_even(self):
        """The paper's selection criterion: odd-even mergesort needs
        the fewest comparators (63 vs 80 at n = 16)."""
        from repro.core.sorting import BitonicSortNetwork

        for n in (4, 8, 16, 32):
            bitonic = BitonicSortNetwork(n)
            odd_even = OddEvenMergesortNetwork(n)
            assert bitonic.num_comparators > odd_even.num_comparators, n
        assert BitonicSortNetwork(16).num_comparators == 80
        assert OddEvenMergesortNetwork(16).num_comparators == 63

    def test_same_depth_as_odd_even(self):
        from repro.core.sorting import BitonicSortNetwork

        for n in (4, 16, 32):
            assert (
                BitonicSortNetwork(n).num_steps
                == OddEvenMergesortNetwork(n).num_steps
            ), n

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_steps_are_parallel(self, n):
        from repro.core.sorting import BitonicSortNetwork

        BitonicSortNetwork(n).validate()

    @given(st.lists(st.integers(0, 2**54), min_size=16, max_size=16))
    def test_sorts_any_16_keys(self, keys):
        from repro.core.sorting import BitonicSortNetwork

        assert BitonicSortNetwork(16).apply(keys) == sorted(keys)

    def test_zero_one_principle_exhaustive_n8(self):
        from repro.core.sorting import BitonicSortNetwork

        net = BitonicSortNetwork(8)
        for bits in range(256):
            vec = [(bits >> i) & 1 for i in range(8)]
            assert net.apply(vec) == sorted(vec)

    def test_no_stage_select(self):
        """Bitonic merge stages need bitonic inputs, so stage select
        cannot skip anything."""
        from repro.core.sorting import BitonicSortNetwork

        net = BitonicSortNetwork(16)
        assert net.required_stages(2) == net.num_stages
        assert net.required_stages(1) == 0
