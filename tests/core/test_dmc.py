"""Tests for the DMC unit (first-phase coalescing; Sections 3.5, 4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import CoalescerConfig
from repro.core.dmc import DMCUnit, split_aligned_runs
from repro.core.request import MemoryRequest, RequestType


def reqs(lines, store=False, requested=8):
    return [
        MemoryRequest(
            addr=ln * 64,
            rtype=RequestType.STORE if store else RequestType.LOAD,
            requested_bytes=requested,
        )
        for ln in lines
    ]


def coalesce(lines, store=False, config=None):
    unit = DMCUnit(config or CoalescerConfig())
    packets, _ = unit.coalesce(reqs(lines, store=store))
    return unit, packets


class TestSplitAlignedRuns:
    def test_single_line(self):
        assert split_aligned_runs([5], 4) == [(5, 1)]

    def test_aligned_quad(self):
        assert split_aligned_runs([8, 9, 10, 11], 4) == [(8, 4)]

    def test_aligned_pair(self):
        assert split_aligned_runs([2, 3], 4) == [(2, 2)]

    def test_misaligned_run_splits(self):
        # Lines 1..4: 1 alone, (2,3) pair, 4 alone.
        assert split_aligned_runs([1, 2, 3, 4], 4) == [(1, 1), (2, 2), (4, 1)]

    def test_long_run_splits_into_quads(self):
        assert split_aligned_runs(list(range(0, 8)), 4) == [(0, 4), (4, 4)]

    def test_run_of_three_aligned(self):
        assert split_aligned_runs([4, 5, 6], 4) == [(4, 2), (6, 1)]

    def test_disjoint_runs(self):
        assert split_aligned_runs([0, 1, 10, 11, 20], 4) == [(0, 2), (10, 2), (20, 1)]

    def test_max_lines_one_forces_singles(self):
        assert split_aligned_runs([0, 1, 2, 3], 1) == [(0, 1), (1, 1), (2, 1), (3, 1)]

    def test_max_lines_two(self):
        assert split_aligned_runs([0, 1, 2, 3], 2) == [(0, 2), (2, 2)]

    def test_invalid_max_lines(self):
        with pytest.raises(ValueError):
            split_aligned_runs([0], 3)

    @given(
        st.sets(st.integers(0, 200), min_size=1, max_size=40),
        st.sampled_from([1, 2, 4]),
    )
    def test_chunks_cover_exactly_the_input(self, lines, max_lines):
        """Property: chunks partition the input lines -- nothing lost,
        nothing added, no overlap, all aligned, sizes legal."""
        sorted_lines = sorted(lines)
        chunks = split_aligned_runs(sorted_lines, max_lines)
        covered = []
        for base, num in chunks:
            assert num in (1, 2, 4) and num <= max_lines
            assert base % num == 0, "chunks must be naturally aligned"
            covered.extend(range(base, base + num))
        assert sorted(covered) == sorted_lines


class TestFirstPhaseCoalescing:
    def test_contiguous_quad_coalesces(self):
        unit, packets = coalesce([0, 1, 2, 3])
        assert len(packets) == 1
        assert packets[0].num_lines == 4
        assert packets[0].size == 256
        assert unit.stats.requests_eliminated == 3

    def test_identical_lines_merge(self):
        """Requests to the same line are 'identical' and always merge."""
        unit, packets = coalesce([5, 5, 5])
        assert len(packets) == 1
        assert packets[0].num_lines == 1
        assert len(packets[0].constituents) == 3

    def test_sparse_requests_pass_through(self):
        unit, packets = coalesce([0, 10, 20, 30])
        assert len(packets) == 4
        assert all(p.num_lines == 1 for p in packets)
        assert unit.stats.requests_eliminated == 0

    def test_max_packet_size_respected(self):
        """A 6-line run must not exceed the 256 B packet."""
        unit, packets = coalesce(list(range(0, 6)))
        assert sum(p.num_lines for p in packets) == 6
        assert all(p.num_lines <= 4 for p in packets)
        assert len(packets) == 2  # (0-3) + (4-5)

    def test_group_restart_after_max(self):
        _, packets = coalesce(list(range(0, 8)))
        assert [(p.base_line, p.num_lines) for p in packets] == [(0, 4), (4, 4)]

    def test_misaligned_run_is_split_aligned(self):
        _, packets = coalesce([1, 2, 3, 4])
        assert [(p.base_line, p.num_lines) for p in packets] == [
            (1, 1),
            (2, 2),
            (4, 1),
        ]

    def test_types_never_mix(self):
        """Adjacent load and store lines must not coalesce."""
        unit = DMCUnit(CoalescerConfig())
        sequence = reqs([0], store=False) + reqs([1], store=True)
        packets, _ = unit.coalesce(sequence)
        assert len(packets) == 2
        assert packets[0].rtype is RequestType.LOAD
        assert packets[1].rtype is RequestType.STORE

    def test_store_runs_coalesce(self):
        _, packets = coalesce([4, 5, 6, 7], store=True)
        assert len(packets) == 1
        assert packets[0].is_store

    def test_constituents_preserved(self):
        _, packets = coalesce([0, 1, 1, 2, 3])
        assert len(packets) == 1
        assert len(packets[0].constituents) == 5
        assert packets[0].requested_bytes == 5 * 8

    def test_empty_sequence(self):
        unit = DMCUnit(CoalescerConfig())
        packets, done = unit.coalesce([], start_cycle=7)
        assert packets == []
        assert done == 7

    def test_max_packet_128_config(self):
        cfg = CoalescerConfig(max_packet_bytes=128)
        _, packets = coalesce(list(range(0, 4)), config=cfg)
        assert [(p.base_line, p.num_lines) for p in packets] == [(0, 2), (2, 2)]

    def test_size_field_encoding(self):
        _, packets = coalesce([0, 1, 2, 3])
        assert packets[0].size_field == 0b10
        _, packets = coalesce([0, 1])
        assert packets[0].size_field == 0b01
        _, packets = coalesce([0])
        assert packets[0].size_field == 0b00


class TestDMCTiming:
    def test_latency_grows_with_merges(self):
        """Section 5.3.3: coalescable sequences spend longer in the
        coalescing stage (the FT observation)."""
        sparse = DMCUnit(CoalescerConfig())
        sparse.coalesce(reqs([i * 10 for i in range(16)]))
        dense = DMCUnit(CoalescerConfig())
        dense.coalesce(reqs(list(range(16))))
        assert (
            dense.stats.total_latency_cycles > sparse.stats.total_latency_cycles
        )

    def test_uncoalescable_latency_is_one_compare_each(self):
        unit = DMCUnit(CoalescerConfig())
        _, done = unit.coalesce(reqs([0, 10, 20, 30]), start_cycle=0)
        assert unit.stats.comparisons == 4
        assert unit.stats.merges == 0
        assert done == 4 * 2  # compare_cycles = 2

    def test_mean_latency(self):
        unit = DMCUnit(CoalescerConfig())
        unit.coalesce(reqs([0, 1]))
        unit.coalesce(reqs([10, 20]))
        assert unit.stats.sequences == 2
        assert unit.stats.mean_latency_cycles() == pytest.approx(
            unit.stats.total_latency_cycles / 2
        )


class TestDMCProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 300), st.booleans()),
            min_size=1,
            max_size=16,
        )
    )
    def test_byte_coverage_preserved(self, items):
        """Property: the union of lines covered by the output packets
        equals the set of requested lines, per type, and every
        constituent request is preserved exactly once."""
        sequence = [
            MemoryRequest(
                addr=ln * 64,
                rtype=RequestType.STORE if store else RequestType.LOAD,
            )
            for ln, store in items
        ]
        # DMC consumes sorted runs (the pipeline guarantees order).
        sequence.sort(key=lambda r: r.sort_key())
        unit = DMCUnit(CoalescerConfig())
        packets, _ = unit.coalesce(sequence)

        for rtype in (RequestType.LOAD, RequestType.STORE):
            want = {r.line for r in sequence if r.rtype is rtype}
            got = set()
            for p in packets:
                if p.rtype is rtype:
                    got |= set(p.lines)
            assert got == want

        ids_in = sorted(r.request_id for r in sequence)
        ids_out = sorted(
            r.request_id for p in packets for r in p.constituents
        )
        assert ids_in == ids_out

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=16))
    def test_never_more_packets_than_requests(self, lines):
        sequence = reqs(sorted(lines))
        unit = DMCUnit(CoalescerConfig())
        packets, _ = unit.coalesce(sequence)
        assert 1 <= len(packets) <= len(sequence)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=16))
    def test_packets_aligned_and_legal(self, lines):
        sequence = reqs(sorted(lines))
        unit = DMCUnit(CoalescerConfig())
        packets, _ = unit.coalesce(sequence)
        for p in packets:
            assert p.num_lines in (1, 2, 4)
            assert p.base_line % p.num_lines == 0
