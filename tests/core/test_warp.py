"""Tests for the GPU-style warp coalescer baseline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.request import MemoryRequest, RequestType
from repro.core.warp import WarpCoalescer


def load(line):
    return MemoryRequest(addr=line * 64, rtype=RequestType.LOAD)


def store(line):
    return MemoryRequest(addr=line * 64, rtype=RequestType.STORE)


class TestWarpCoalescer:
    def test_duplicates_merge(self):
        wc = WarpCoalescer(warp_size=4)
        out = wc.run([load(5), load(5), load(5), load(5)])
        assert len(out) == 1
        assert len(out[0].constituents) == 4
        assert wc.stats.coalescing_efficiency == 0.75

    def test_distinct_lines_never_merge(self):
        """The GPU model cannot build multi-line packets -- even for
        perfectly contiguous lines."""
        wc = WarpCoalescer(warp_size=4)
        out = wc.run([load(0), load(1), load(2), load(3)])
        assert len(out) == 4
        assert all(p.num_lines == 1 for p in out)
        assert wc.stats.coalescing_efficiency == 0.0

    def test_types_kept_apart(self):
        wc = WarpCoalescer(warp_size=4)
        out = wc.run([load(7), store(7), load(7), store(7)])
        assert len(out) == 2
        types = {p.rtype for p in out}
        assert types == {RequestType.LOAD, RequestType.STORE}

    def test_warp_window_boundary(self):
        """Duplicates split across warps do not merge (window-local)."""
        wc = WarpCoalescer(warp_size=2)
        out = wc.run([load(1), load(2), load(1), load(2)])
        assert len(out) == 4

    def test_fence_flushes(self):
        wc = WarpCoalescer(warp_size=8)
        wc.push(load(1))
        fence = MemoryRequest(addr=0, rtype=RequestType.FENCE)
        out = wc.push(fence)
        assert len(out) == 1

    def test_flush_empty(self):
        assert WarpCoalescer().flush() == []

    def test_bad_warp_size(self):
        with pytest.raises(ValueError):
            WarpCoalescer(warp_size=0)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_conservation_property(self, lines):
        """Every input request ends up in exactly one output packet."""
        reqs = [load(ln) for ln in lines]
        wc = WarpCoalescer(warp_size=16)
        out = wc.run(list(reqs))
        got = sorted(r.request_id for p in out for r in p.constituents)
        assert got == sorted(r.request_id for r in reqs)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_output_never_exceeds_line(self, lines):
        wc = WarpCoalescer(warp_size=16)
        out = wc.run([load(ln) for ln in lines])
        assert all(p.size == 64 for p in out)
