"""Differential tests: indexed MSHR file vs the reference linear scan.

:class:`repro.core.mshr.DynamicMSHRFile` replaced the original
linear-scan offer path with a line->entry hash index plus incremental
occupancy counters; :class:`repro.core.mshr_reference.ReferenceMSHRFile`
retains the original implementation verbatim.  These tests drive both
through identical randomized CRQ-style operation streams and require
bit-identical observable behaviour at every step: outcomes, allocated
entry indices, remainder packets, subentry attachment order, stats,
occupancy answers, and metric registries.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CoalescerConfig
from repro.core.mshr import DynamicMSHRFile, InsertOutcome
from repro.core.mshr_reference import ReferenceMSHRFile
from repro.core.request import CoalescedRequest, MemoryRequest, RequestType
from repro.obs import MetricsRegistry

LINE = 64


def make_packet(
    base_line: int, num_lines: int, rtype: RequestType, cycle: int
) -> CoalescedRequest:
    """A coalesced packet with one constituent per covered line."""
    constituents = [
        MemoryRequest(addr=(base_line + k) * LINE, rtype=rtype)
        for k in range(num_lines)
    ]
    return CoalescedRequest(
        addr=base_line * LINE,
        num_lines=num_lines,
        rtype=rtype,
        constituents=constituents,
        issue_cycle=cycle,
    )


def snapshot(file) -> dict:
    """Every observable of an MSHR file, for equality comparison."""
    return {
        "entries": [
            (
                e.index,
                e.valid,
                e.addr,
                e.num_lines,
                e.rtype,
                [(s.line_id, s.request.request_id) for s in e.subentries],
                e.issue_cycle,
                e.complete_cycle,
            )
            for e in file.entries
        ],
        "stats": vars(file.stats) if hasattr(file.stats, "__dict__") else {
            name: getattr(file.stats, name)
            for name in (
                "offered",
                "allocated",
                "merged_full",
                "merged_partial",
                "rejected_full",
                "completions",
                "subentries_added",
                "remainder_packets",
            )
        },
        "free_entries": file.free_entries(),
        "has_free_entry": file.has_free_entry,
        "all_idle": file.all_idle,
        "occupancy": file.occupancy(),
        "earliest": file.earliest_completion(-1),
        "latest": file.latest_completion(-1),
    }


def packet_key(packet: CoalescedRequest) -> tuple:
    return (
        packet.addr,
        packet.num_lines,
        packet.rtype,
        [r.request_id for r in packet.constituents],
        packet.issue_cycle,
    )


def _normalize_ids(snap: dict) -> dict:
    """Rewrite request_ids to first-appearance ordinals."""
    mapping: dict[int, int] = {}
    entries = []
    for idx, valid, addr, num_lines, rtype, subs, issue, complete in snap["entries"]:
        renamed = []
        for line_id, request_id in subs:
            ordinal = mapping.setdefault(request_id, len(mapping))
            renamed.append((line_id, ordinal))
        entries.append((idx, valid, addr, num_lines, rtype, renamed, issue, complete))
    return {**snap, "entries": entries}


# One randomized operation: (kind, base_line, num_lines, type_bit, latency)
op_strategy = st.tuples(
    st.sampled_from(["offer", "direct", "merge_only", "complete"]),
    st.integers(min_value=0, max_value=11),
    st.sampled_from([1, 2, 4]),
    st.booleans(),
    st.integers(min_value=1, max_value=40),
)


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=1, max_size=40),
        coalescing=st.booleans(),
    )
    def test_randomized_streams_match(self, ops, coalescing):
        config = CoalescerConfig(
            num_mshrs=4, enable_mshr_coalescing=coalescing
        )
        reg_fast, reg_ref = MetricsRegistry(), MetricsRegistry()
        fast = DynamicMSHRFile(config, reg_fast)
        ref = ReferenceMSHRFile(config, reg_ref)

        cycle = 0
        for kind, base_line, num_lines, is_store, latency in ops:
            cycle += 1
            rtype = RequestType.STORE if is_store else RequestType.LOAD
            if kind == "complete":
                done_fast = fast.pop_completions(cycle + latency)
                done_ref = ref.pop_completions(cycle + latency)
                assert [
                    (e.index, e.addr, [s.request.request_id for s in e.subentries])
                    for e in done_fast
                ] == [
                    (e.index, e.addr, [s.request.request_id for s in e.subentries])
                    for e in done_ref
                ]
            else:
                # Same request_ids on both sides: build one packet spec
                # and clone it so constituent ids match pairwise.
                packet_fast = make_packet(base_line, num_lines, rtype, cycle)
                packet_ref = CoalescedRequest(
                    addr=packet_fast.addr,
                    num_lines=packet_fast.num_lines,
                    rtype=packet_fast.rtype,
                    constituents=list(packet_fast.constituents),
                    issue_cycle=packet_fast.issue_cycle,
                )
                if kind == "offer":
                    out_fast, rest_fast, entry_fast = fast.offer(
                        packet_fast, cycle, latency
                    )
                    out_ref, rest_ref, entry_ref = ref.offer(
                        packet_ref, cycle, latency
                    )
                    assert out_fast is out_ref
                    assert [packet_key(p) for p in rest_fast] == [
                        packet_key(p) for p in rest_ref
                    ]
                    assert (entry_fast is None) == (entry_ref is None)
                    if entry_fast is not None:
                        assert entry_fast.index == entry_ref.index
                elif kind == "direct":
                    entry_fast = fast.allocate_direct(packet_fast, cycle, latency)
                    entry_ref = ref.allocate_direct(packet_ref, cycle, latency)
                    assert (entry_fast is None) == (entry_ref is None)
                    if entry_fast is not None:
                        assert entry_fast.index == entry_ref.index
                else:  # merge_only
                    out_fast, rest_fast = fast.merge_only(packet_fast)
                    out_ref, rest_ref = ref.merge_only(packet_ref)
                    assert out_fast is out_ref
                    assert [packet_key(p) for p in rest_fast] == [
                        packet_key(p) for p in rest_ref
                    ]
            assert snapshot(fast) == snapshot(ref)

        assert reg_fast.as_flat_dict() == reg_ref.as_flat_dict()

    def test_duplicate_coverage_from_bypass(self):
        """allocate_direct can create same-type entries covering one
        line; a later offer must merge into both, like the scan did."""
        config = CoalescerConfig(num_mshrs=4)
        fast = DynamicMSHRFile(config, MetricsRegistry())
        ref = ReferenceMSHRFile(config, MetricsRegistry())
        snaps = []
        for file in (fast, ref):
            first = file.allocate_direct(
                make_packet(3, 1, RequestType.LOAD, 1), 1, 10
            )
            second = file.allocate_direct(
                make_packet(3, 1, RequestType.LOAD, 2), 2, 10
            )
            assert first is not None and second is not None
            out, rest, entry = file.offer(
                make_packet(3, 1, RequestType.LOAD, 3), 3, 10
            )
            assert out is InsertOutcome.MERGED and not rest and entry is None
            # Both resident entries must have received the subentry.
            assert len(first.subentries) == 2
            assert len(second.subentries) == 2
            snaps.append(snapshot(file))
        # request_ids are globally unique across the two loops; compare
        # structure with ids normalized to first-appearance order.
        assert _normalize_ids(snaps[0]) == _normalize_ids(snaps[1])

    def test_service_cycles_laziness_preserved(self):
        """The service-time callable fires only when an entry is
        actually allocated, identically on both implementations."""
        config = CoalescerConfig(num_mshrs=1)
        for cls in (DynamicMSHRFile, ReferenceMSHRFile):
            calls = []
            file = cls(config, MetricsRegistry())

            def service():
                calls.append(1)
                return 10

            out, _, _ = file.offer(make_packet(0, 1, RequestType.LOAD, 1), 1, service)
            assert len(calls) == 1  # allocated -> evaluated
            out, _, _ = file.offer(make_packet(9, 1, RequestType.LOAD, 2), 2, service)
            assert out.name == "FULL"
            assert len(calls) == 1  # rejected -> not evaluated
