"""Tests for trace persistence (save/load/summary)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.tracefile import (
    MAGIC,
    TraceFormatError,
    format_record,
    load_trace,
    parse_record,
    save_trace,
    trace_summary,
)
from repro.cache.tracer import MemoryTracer, TraceRecord
from repro.core.request import Access, MemoryRequest, RequestType


def rec(cycle=0, line=0, rtype=RequestType.LOAD, requested=8, **flags):
    if rtype is RequestType.FENCE:
        request = MemoryRequest(addr=0, rtype=rtype)
    else:
        request = MemoryRequest(addr=line * 64, rtype=rtype, requested_bytes=requested)
    return TraceRecord(request=request, cycle=cycle, **flags)


class TestRecordFormat:
    def test_roundtrip_simple(self):
        r = rec(cycle=12, line=5, requested=4)
        back = parse_record(format_record(r))
        assert back.cycle == 12
        assert back.request.addr == 5 * 64
        assert back.request.requested_bytes == 4
        assert back.request.rtype is RequestType.LOAD

    def test_roundtrip_flags(self):
        r = rec(cycle=3, line=1, rtype=RequestType.STORE, is_writeback=True)
        back = parse_record(format_record(r))
        assert back.is_writeback and not back.is_secondary

    def test_fence(self):
        r = rec(cycle=9, rtype=RequestType.FENCE)
        back = parse_record(format_record(r))
        assert back.request.is_fence

    @pytest.mark.parametrize(
        "bad",
        [
            "1 L 0x40",  # too few fields
            "x L 0x40 64 8 -",  # bad cycle
            "1 Q 0x40 64 8 -",  # bad type
            "1 L zz 64 8 -",  # bad addr
            "-1 L 0x40 64 8 -",  # negative cycle
            "1 L 0x40 64 8 xyz",  # bad flags
        ],
    )
    def test_malformed_lines(self, bad):
        with pytest.raises(TraceFormatError):
            parse_record(bad, lineno=7)

    @settings(max_examples=40)
    @given(
        st.integers(0, 10**6),
        st.integers(0, 10**9),
        st.sampled_from([RequestType.LOAD, RequestType.STORE]),
        st.integers(1, 64),
        st.booleans(),
        st.booleans(),
    )
    def test_roundtrip_property(self, cycle, line, rtype, requested, wb, sec):
        r = rec(
            cycle=cycle,
            line=line,
            rtype=rtype,
            requested=requested,
            is_writeback=wb,
            is_secondary=sec,
        )
        back = parse_record(format_record(r))
        assert (back.cycle, back.request.addr, back.request.rtype) == (
            cycle,
            line * 64,
            rtype,
        )
        assert back.request.requested_bytes == requested
        assert (back.is_writeback, back.is_secondary) == (wb, sec)


class TestFileIO:
    def _records(self, n=20):
        return [rec(cycle=i * 2, line=i, requested=8) for i in range(n)]

    def test_save_and_load(self, tmp_path):
        path = save_trace(self._records(), tmp_path / "t.trace")
        assert path.read_text().startswith(MAGIC)
        loaded = list(load_trace(path))
        assert len(loaded) == 20
        assert [r.cycle for r in loaded] == [i * 2 for i in range(20)]

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.trace"
        p.write_text("not a trace\n")
        with pytest.raises(TraceFormatError, match="header"):
            list(load_trace(p))

    def test_non_monotone_cycles_rejected(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text(MAGIC + "\n5 L 0x0 64 8 -\n3 L 0x40 64 8 -\n")
        with pytest.raises(TraceFormatError, match="non-decreasing"):
            list(load_trace(p))

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text(MAGIC + "\n# a comment\n\n1 L 0x0 64 8 -  # inline\n")
        assert len(list(load_trace(p))) == 1

    def test_summary(self, tmp_path):
        records = [
            rec(cycle=0, line=0),
            rec(cycle=1, line=1, rtype=RequestType.STORE, is_writeback=True),
            rec(cycle=2, rtype=RequestType.FENCE),
        ]
        path = save_trace(records, tmp_path / "t.trace")
        s = trace_summary(path)
        assert s["loads"] == 1 and s["stores"] == 1 and s["fences"] == 1
        assert s["writebacks"] == 1
        assert s["first_cycle"] == 0 and s["last_cycle"] == 2


class TestEndToEnd:
    def test_real_trace_roundtrips_and_replays(self, tmp_path):
        """Trace a workload, save it, reload it, and feed the replay
        through a coalescer: identical results to the live stream."""
        from repro.core.coalescer import MemoryCoalescer
        from repro.core.config import CoalescerConfig
        from repro.workloads import get_workload

        def make_tracer():
            h = CacheHierarchy(
                HierarchyConfig(
                    num_cores=4,
                    l1_size=4 * 1024,
                    l1_assoc=2,
                    l2_size=16 * 1024,
                    l2_assoc=4,
                    llc_size=64 * 1024,
                    llc_assoc=8,
                )
            )
            return MemoryTracer(h, cycles_per_access=0.25)

        w = get_workload("STREAM", num_threads=4, seed=3)
        live = list(make_tracer().trace(w.accesses(3000)))
        path = save_trace(live, tmp_path / "stream.trace")

        def run(records):
            co = MemoryCoalescer(CoalescerConfig(), service_time=330)
            last = 0
            for r in records:
                co.push(r.request, r.cycle)
                last = r.cycle
            co.flush(last + 1)
            return co.stats()

        a = run(live)
        b = run(list(load_trace(path)))
        assert a.hmc_requests == b.hmc_requests
        assert a.llc_requests == b.llc_requests
        assert abs(a.coalescing_efficiency - b.coalescing_efficiency) < 1e-12
