"""Tests for the memory tracer."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.tracer import MemoryTracer
from repro.core.request import Access, RequestType


def tiny_tracer(cycles_per_access=1.0):
    h = CacheHierarchy(
        HierarchyConfig(
            num_cores=2,
            l1_size=4 * 1024,
            l1_assoc=2,
            l2_size=16 * 1024,
            l2_assoc=4,
            llc_size=64 * 1024,
            llc_assoc=8,
        )
    )
    return MemoryTracer(h, cycles_per_access=cycles_per_access)


class TestTracer:
    def test_cycles_advance_per_access(self):
        t = tiny_tracer(cycles_per_access=3)
        accesses = [Access(addr=i * 4096, size=8) for i in range(4)]
        records = t.trace_list(accesses)
        assert [r.cycle for r in records] == [0, 3, 6, 9]

    def test_fractional_pacing_respects_llc_port(self):
        """Two accesses share a CPU cycle, but the LLC emits at most
        one request per cycle (the port limit)."""
        t = tiny_tracer(cycles_per_access=0.5)
        accesses = [Access(addr=i * 4096, size=8) for i in range(4)]
        records = t.trace_list(accesses)
        assert [r.cycle for r in records] == [0, 1, 2, 3]

    def test_fractional_pacing_without_port_limit(self):
        h = tiny_tracer().hierarchy
        t = MemoryTracer(h, cycles_per_access=0.5, llc_port_cycles=0)
        accesses = [Access(addr=(100 + i) * 4096, size=8) for i in range(4)]
        records = t.trace_list(accesses)
        assert [r.cycle for r in records] == [0, 0, 1, 1]

    def test_rejects_nonpositive_pacing(self):
        with pytest.raises(ValueError):
            MemoryTracer(cycles_per_access=0)

    def test_stats(self):
        t = tiny_tracer()
        accesses = [Access(addr=i * 4096, size=16) for i in range(10)]
        accesses += [Access(addr=0, size=16)]  # warm hit
        records = t.trace_list(accesses)
        assert t.stats.cpu_accesses == 11
        assert t.stats.llc_requests == 10
        assert len(records) == 10
        assert t.stats.requested_bytes == 160
        assert t.stats.miss_fraction == pytest.approx(10 / 11)

    def test_lazy_generator(self):
        t = tiny_tracer()
        gen = t.trace(Access(addr=i * 4096, size=8) for i in range(5))
        first = next(gen)
        assert first.request.addr == 0
        assert t.stats.cpu_accesses >= 1

    def test_fence_not_counted_in_llc_stats(self):
        t = tiny_tracer()
        records = t.trace_list([Access(addr=0, size=0, rtype=RequestType.FENCE)])
        assert len(records) == 1
        assert records[0].request.is_fence
        assert t.stats.llc_requests == 0

    def test_writebacks_flagged(self):
        t = tiny_tracer()
        n_lines = (64 * 1024 // 64) * 3
        accesses = (
            Access(addr=i * 64, size=8, rtype=RequestType.STORE)
            for i in range(n_lines)
        )
        records = t.trace_list(accesses)
        wb = [r for r in records if r.is_writeback]
        assert wb
        assert t.stats.writebacks == len(wb)
        assert all(r.request.rtype is RequestType.STORE for r in wb)
