"""Differential tests: batch cache paths vs the sequential walks.

``SetAssociativeCache.access_lines_batch`` and
``CacheHierarchy.access_batch`` are the vector capture kernel's
foundations; their contract is outcome-for-outcome equality with the
sequential ``access_line`` / ``access`` paths on the same stream --
hits, victim choices, write-back ordering, statistics, and (for the
hierarchy) the global LLC event order and the secondary-miss window.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.set_assoc import (
    CacheConfig,
    Replacement,
    SetAssociativeCache,
)
from repro.core.request import Access, RequestType

#: Tiny tag space so short streams still see conflict evictions.
_lines = st.integers(min_value=0, max_value=47).map(lambda i: i * 64)
_stream = st.lists(st.tuples(_lines, st.booleans()), max_size=120)


@settings(max_examples=60, deadline=None)
@given(
    stream=_stream,
    replacement=st.sampled_from(list(Replacement)),
    chunks=st.integers(min_value=1, max_value=3),
)
def test_access_lines_batch_matches_sequential(stream, replacement, chunks):
    cfg = CacheConfig(
        size_bytes=1024, associativity=2, line_size=64, replacement=replacement
    )
    seq = SetAssociativeCache(cfg)
    bat = SetAssociativeCache(cfg)

    ref_hits, ref_wb, ref_ev = [], [], []
    for pos, (addr, store) in enumerate(stream):
        res = seq.access_line(addr, is_store=store)
        ref_hits.append(res.hit)
        if res.writeback_addr is not None:
            ref_wb.append((pos, res.writeback_addr))
        if res.evicted_addr is not None:
            ref_ev.append((pos, res.evicted_addr))

    # Split the stream into a few batch calls: state must carry over.
    bat_hits, bat_wb, bat_ev = [], [], []
    bounds = [len(stream) * i // chunks for i in range(chunks + 1)]
    for lo, hi in zip(bounds, bounds[1:]):
        part = stream[lo:hi]
        hits, wbs, evs = bat.access_lines_batch(
            np.asarray([a for a, _ in part], dtype=np.int64),
            np.asarray([s for _, s in part], dtype=bool),
        )
        bat_hits.extend(hits.tolist())
        bat_wb.extend((lo + pos, addr) for pos, addr in wbs)
        bat_ev.extend((lo + pos, addr) for pos, addr in evs)

    assert bat_hits == ref_hits
    assert bat_wb == ref_wb
    assert bat_ev == ref_ev
    assert bat.stats == seq.stats


_hier_config = st.builds(
    HierarchyConfig,
    num_cores=st.sampled_from((1, 2)),
    l1_size=st.just(512),
    l1_assoc=st.just(2),
    l2_size=st.just(1024),
    l2_assoc=st.just(2),
    llc_size=st.just(2048),
    llc_assoc=st.just(4),
    line_size=st.just(64),
    l2_private=st.booleans(),
    llc_fill_latency=st.sampled_from((0, 40)),
)

_accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4095),  # addr
        st.integers(min_value=1, max_value=130),  # size (crosses lines)
        st.booleans(),  # store
        st.integers(min_value=0, max_value=1),  # thread
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(config=_hier_config, accesses=_accesses)
def test_hierarchy_access_batch_matches_sequential(config, accesses):
    seq = CacheHierarchy(config)
    bat = CacheHierarchy(config)

    # Sequential reference: one Access per tuple, cycle = 3 * index
    # (spaced so fill latency sometimes expires between accesses).
    ref_events = []
    for i, (addr, size, store, tid) in enumerate(accesses):
        evs = seq.access(
            Access(
                addr=addr,
                size=size,
                rtype=RequestType.STORE if store else RequestType.LOAD,
                thread_id=tid % config.num_cores,
            ),
            cycle=3 * i,
        )
        for ev in evs:
            kind = 2 if ev.is_writeback else (1 if ev.is_secondary else 0)
            ref_events.append((kind, ev.request.addr, ev.request.requested_bytes))

    # Batch path: pre-split every access into its per-line rows, the
    # same expansion the vector capture kernel performs.
    line_addrs, stores, cores, requested, cycles = [], [], [], [], []
    for i, (addr, size, store, tid) in enumerate(accesses):
        ls = config.line_size
        line = addr - addr % ls
        while line < addr + size:
            lo = max(addr, line)
            hi = min(addr + size, line + ls)
            line_addrs.append(line)
            stores.append(store)
            cores.append(tid % config.num_cores)
            requested.append(hi - lo)
            cycles.append(3 * i)
            line += ls
    events = bat.access_batch(
        np.asarray(line_addrs, dtype=np.int64),
        np.asarray(stores, dtype=bool),
        np.asarray(cores, dtype=np.int64),
        np.asarray(requested, dtype=np.int64),
        np.asarray(cycles, dtype=np.int64),
    )
    bat_events = [(kind, addr, req) for _row, kind, addr, req in events]

    assert bat_events == ref_events
    assert bat.secondary_misses == seq.secondary_misses
    assert bat.llc.stats == seq.llc.stats
    for a, b in zip(bat.l1 + bat.l2, seq.l1 + seq.l2):
        assert a.stats == b.stats
