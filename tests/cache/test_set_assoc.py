"""Tests for the set-associative cache model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import (
    AccessResult,
    CacheConfig,
    Replacement,
    SetAssociativeCache,
)


def small_cache(assoc=2, sets=4, line=64, repl=Replacement.LRU):
    return SetAssociativeCache(
        CacheConfig(
            size_bytes=assoc * sets * line,
            associativity=assoc,
            line_size=line,
            replacement=repl,
        )
    )


class TestConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, associativity=8, line_size=64)
        assert cfg.num_sets == 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=1)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, line_size=64)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64 * 3, associativity=1, line_size=63)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64, associativity=1, line_size=64)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.access_line(0, is_store=False).hit
        assert c.access_line(0, is_store=False).hit
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_different_sets_do_not_conflict(self):
        c = small_cache(assoc=1, sets=4)
        for i in range(4):
            c.access_line(i * 64, is_store=False)
        assert c.stats.misses == 4
        for i in range(4):
            assert c.access_line(i * 64, is_store=False).hit

    def test_conflict_eviction(self):
        c = small_cache(assoc=1, sets=4)
        a, b = 0, 4 * 64  # same set, different tags
        c.access_line(a, is_store=False)
        res = c.access_line(b, is_store=False)
        assert not res.hit
        assert res.evicted_addr == a
        assert not c.contains(a)
        assert c.contains(b)

    def test_clean_eviction_reports_no_writeback(self):
        c = small_cache(assoc=1, sets=1)
        c.access_line(0, is_store=False)
        res = c.access_line(64, is_store=False)
        assert res.writeback_addr is None
        assert res.evicted_addr == 0

    def test_dirty_eviction_reports_writeback(self):
        c = small_cache(assoc=1, sets=1)
        c.access_line(0, is_store=True)
        res = c.access_line(64, is_store=False)
        assert res.writeback_addr == 0
        assert c.stats.writebacks == 1

    def test_store_hit_marks_dirty(self):
        c = small_cache()
        c.access_line(0, is_store=False)
        c.access_line(0, is_store=True)
        assert c.is_dirty(0)

    def test_invalidate(self):
        c = small_cache()
        c.access_line(0, is_store=True)
        assert c.invalidate(0) is True
        assert not c.contains(0)
        assert c.invalidate(0) is False

    def test_flush_dirty(self):
        c = small_cache(assoc=4, sets=2)
        c.access_line(0, is_store=True)
        c.access_line(64, is_store=False)
        c.access_line(128, is_store=True)
        dirty = sorted(c.flush_dirty())
        assert dirty == [0, 128]
        # Lines remain resident but clean.
        assert c.contains(0) and not c.is_dirty(0)

    def test_resident_lines(self):
        c = small_cache(assoc=2, sets=2)
        for i in range(3):
            c.access_line(i * 64, is_store=False)
        assert c.resident_lines() == 3


class TestLRU:
    def test_lru_victim_is_least_recent(self):
        c = small_cache(assoc=2, sets=1)
        c.access_line(0, is_store=False)
        c.access_line(64, is_store=False)
        c.access_line(0, is_store=False)  # touch 0 -> 64 is LRU
        res = c.access_line(128, is_store=False)
        assert res.evicted_addr == 64
        assert c.contains(0)

    def test_fifo_ignores_touches(self):
        c = small_cache(assoc=2, sets=1, repl=Replacement.FIFO)
        c.access_line(0, is_store=False)
        c.access_line(64, is_store=False)
        c.access_line(0, is_store=False)  # touch does not save 0
        res = c.access_line(128, is_store=False)
        assert res.evicted_addr == 0

    def test_random_policy_deterministic_with_seed(self):
        def evictions(seed):
            c = SetAssociativeCache(
                CacheConfig(4 * 64, 4, 64, Replacement.RANDOM, seed=seed)
            )
            out = []
            for i in range(32):
                r = c.access_line(i * 64 * 1, is_store=False)
                out.append(r.evicted_addr)
            return out

        assert evictions(1) == evictions(1)

    def test_working_set_within_capacity_never_re_misses(self):
        c = small_cache(assoc=4, sets=8)
        lines = [i * 64 for i in range(32)]  # exactly capacity
        for addr in lines:
            c.access_line(addr, is_store=False)
        for addr in lines:
            assert c.access_line(addr, is_store=False).hit


class TestReferenceModel:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.booleans()),
            min_size=1,
            max_size=300,
        )
    )
    def test_matches_dict_reference_lru(self, ops):
        """Property: the cache agrees with a straightforward per-set
        LRU reference model on hits, evictions and dirtiness."""
        assoc, sets, line = 2, 4, 64
        cache = small_cache(assoc=assoc, sets=sets, line=line)
        ref: dict[int, list[tuple[int, bool]]] = {s: [] for s in range(sets)}

        for line_no, is_store in ops:
            addr = line_no * line
            s = line_no % sets
            tag = line_no // sets
            entry = next(((t, d) for t, d in ref[s] if t == tag), None)
            expect_hit = entry is not None
            res = cache.access_line(addr, is_store=is_store)
            assert res.hit == expect_hit
            if expect_hit:
                ref[s].remove(entry)
                ref[s].append((tag, entry[1] or is_store))
            else:
                if len(ref[s]) >= assoc:
                    vt, vd = ref[s].pop(0)
                    vaddr = (vt * sets + s) * line
                    if vd:
                        assert res.writeback_addr == vaddr
                    else:
                        assert res.evicted_addr == vaddr
                ref[s].append((tag, is_store))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32), st.integers(1, 400))
    def test_occupancy_never_exceeds_capacity(self, seed, n):
        rng = random.Random(seed)
        c = small_cache(assoc=2, sets=4)
        for _ in range(n):
            c.access_line(rng.randrange(256) * 64, is_store=rng.random() < 0.5)
        assert c.resident_lines() <= 8
