"""Tests for the three-level cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.request import Access, RequestType


def small_hierarchy(cores=2):
    return CacheHierarchy(
        HierarchyConfig(
            num_cores=cores,
            l1_size=4 * 1024,
            l1_assoc=2,
            l2_size=16 * 1024,
            l2_assoc=4,
            llc_size=64 * 1024,
            llc_assoc=8,
        )
    )


class TestBasics:
    def test_cold_access_reaches_memory(self):
        h = small_hierarchy()
        events = h.access(Access(addr=0x1000, size=8))
        assert len(events) == 1
        req = events[0].request
        assert req.addr == 0x1000
        assert req.rtype is RequestType.LOAD
        assert req.requested_bytes == 8
        assert not events[0].is_writeback

    def test_warm_access_filtered(self):
        h = small_hierarchy()
        h.access(Access(addr=0x1000, size=8))
        assert h.access(Access(addr=0x1000, size=8)) == []
        assert h.access(Access(addr=0x1008, size=8)) == []  # same line

    def test_store_miss_tagged_store(self):
        h = small_hierarchy()
        events = h.access(Access(addr=0x2000, size=8, rtype=RequestType.STORE))
        assert events[0].request.rtype is RequestType.STORE

    def test_fence_passes_through(self):
        h = small_hierarchy()
        events = h.access(Access(addr=0, size=0, rtype=RequestType.FENCE))
        assert len(events) == 1
        assert events[0].request.is_fence

    def test_straddling_access_touches_two_lines(self):
        h = small_hierarchy()
        events = h.access(Access(addr=60, size=8))
        assert [e.request.addr for e in events] == [0, 64]
        assert [e.request.requested_bytes for e in events] == [4, 4]

    def test_requested_bytes_capped_by_line(self):
        h = small_hierarchy()
        events = h.access(Access(addr=0, size=256))
        assert len(events) == 4
        assert all(e.request.requested_bytes == 64 for e in events)

    def test_bad_thread_id_rejected(self):
        h = small_hierarchy(cores=2)
        with pytest.raises(ValueError):
            h.access(Access(addr=0, size=4, thread_id=5))

    def test_target_recorded(self):
        h = small_hierarchy()
        a = Access(addr=0x3000, size=4)
        events = h.access(a)
        assert events[0].request.targets == [a.access_id]


class TestPrivateL1SharedLLC:
    def test_l1s_are_private(self):
        """The same line misses separately in each core's L1 but only
        the first miss reaches memory (the LLC is shared)."""
        h = small_hierarchy(cores=2)
        first = h.access(Access(addr=0x4000, size=8, thread_id=0))
        second = h.access(Access(addr=0x4000, size=8, thread_id=1))
        assert len(first) == 1
        assert second == []  # L1 miss, but L2/LLC hit: filtered

    def test_shared_llc_aggregates(self):
        h = small_hierarchy(cores=2)
        h.access(Access(addr=0x4000, size=8, thread_id=0))
        before = h.llc.stats.misses
        h.access(Access(addr=0x4000, size=8, thread_id=1))
        assert h.llc.stats.misses == before


class TestWritebackPath:
    def test_dirty_llc_eviction_emits_writeback(self):
        """Stream enough dirty lines through a tiny hierarchy to force
        dirty LLC victims into the event stream."""
        h = small_hierarchy()
        writebacks = []
        # 3x the LLC capacity of distinct dirty lines.
        lines = (64 * 1024 // 64) * 3
        for i in range(lines):
            for e in h.access(Access(addr=i * 64, size=8, rtype=RequestType.STORE)):
                if e.is_writeback:
                    writebacks.append(e.request)
        assert writebacks, "expected dirty write-backs"
        assert all(w.rtype is RequestType.STORE for w in writebacks)
        assert all(w.addr % 64 == 0 for w in writebacks)

    def test_read_only_stream_has_no_writebacks(self):
        h = small_hierarchy()
        events = []
        for i in range(5000):
            events += h.access(Access(addr=(i * 64) % (1 << 20), size=8))
        assert not any(e.is_writeback for e in events)


class TestMissRates:
    def test_sequential_scan_miss_rates(self):
        h = small_hierarchy()
        for i in range(20_000):
            h.access(Access(addr=(i * 8), size=8))
        rates = h.miss_rates()
        # 8 accesses per 64 B line -> L1 miss rate ~ 1/8.
        assert rates["l1"] == pytest.approx(0.125, rel=0.1)
        # Streaming never rehits lower levels: L2/LLC miss every fill.
        assert rates["l2"] > 0.9
        assert rates["llc"] > 0.9

    def test_small_working_set_llc_quiet(self):
        h = small_hierarchy()
        warm = [Access(addr=(i * 64) % 2048, size=8) for i in range(2000)]
        events = sum(len(h.access(a)) for a in warm)
        # 32 distinct lines: everything after the cold misses is a hit.
        assert events == 32

    def test_total_llc_misses_counter(self):
        h = small_hierarchy()
        for i in range(100):
            h.access(Access(addr=i * 64, size=8))
        assert h.total_llc_misses() == 100


class TestPrefetcher:
    def test_prefetch_emits_adjacent_line(self):
        from dataclasses import replace

        h = CacheHierarchy(
            HierarchyConfig(
                num_cores=1,
                l1_size=4 * 1024,
                l1_assoc=2,
                l2_size=16 * 1024,
                l2_assoc=4,
                llc_size=64 * 1024,
                llc_assoc=8,
                llc_prefetch=True,
            )
        )
        events = h.access(Access(addr=0x8000, size=8))
        kinds = [(e.request.addr, e.is_prefetch) for e in events]
        assert kinds == [(0x8000, False), (0x8040, True)]
        # The prefetched line is resident: touching it is now a hit.
        assert h.access(Access(addr=0x8040, size=8)) == []

    def test_prefetch_requested_bytes_zero(self):
        h = CacheHierarchy(
            HierarchyConfig(
                num_cores=1,
                l1_size=4 * 1024,
                l1_assoc=2,
                l2_size=16 * 1024,
                l2_assoc=4,
                llc_size=64 * 1024,
                llc_assoc=8,
                llc_prefetch=True,
            )
        )
        events = h.access(Access(addr=0, size=8))
        pf = [e for e in events if e.is_prefetch]
        assert pf and pf[0].request.requested_bytes == 0

    def test_no_prefetch_when_next_resident(self):
        h = CacheHierarchy(
            HierarchyConfig(
                num_cores=1,
                l1_size=4 * 1024,
                l1_assoc=2,
                l2_size=16 * 1024,
                l2_assoc=4,
                llc_size=64 * 1024,
                llc_assoc=8,
                llc_prefetch=True,
            )
        )
        h.access(Access(addr=0x8040, size=8))  # makes 0x8040 resident
        events = h.access(Access(addr=0x8000, size=8))
        # Demand miss for 0x8000; 0x8040 already cached -> no prefetch
        # event for it.
        assert [e.request.addr for e in events if e.is_prefetch] == []

    def test_prefetch_disabled_by_default(self):
        h = small_hierarchy()
        events = h.access(Access(addr=0x8000, size=8))
        assert not any(e.is_prefetch for e in events)
