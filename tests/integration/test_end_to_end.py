"""Cross-module integration tests: the full Section 5.1 path."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.tracer import MemoryTracer
from repro.core.coalescer import MemoryCoalescer
from repro.core.config import CoalescerConfig, UNCOALESCED_CONFIG
from repro.core.request import RequestType
from repro.hmc.device import HMCDevice
from repro.riscv.cpu import RV64Core
from repro.riscv.programs import ALL_KERNELS
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.workloads import get_workload


def small_hierarchy():
    return CacheHierarchy(
        HierarchyConfig(
            num_cores=12,
            l1_size=8 * 1024,
            l1_assoc=2,
            l2_size=32 * 1024,
            l2_assoc=4,
            llc_size=256 * 1024,
            llc_assoc=8,
            llc_fill_latency=400,
        )
    )


class TestConservation:
    """No request may be lost or duplicated anywhere in the stack."""

    @pytest.mark.parametrize("name", ["STREAM", "SG", "FT"])
    def test_every_miss_serviced_exactly_once(self, name):
        w = get_workload(name, num_threads=12, seed=5)
        tracer = MemoryTracer(small_hierarchy(), cycles_per_access=1 / 12)
        co = MemoryCoalescer(CoalescerConfig(), service_time=330)
        pushed = []
        for rec in tracer.trace(w.accesses(8_000)):
            pushed.append(rec.request.request_id)
            co.push(rec.request, rec.cycle)
        co.flush(tracer.cycle + 1)
        serviced = sorted(s.request.request_id for s in co.serviced)
        assert serviced == sorted(pushed)

    def test_issued_bytes_cover_missed_lines(self):
        """The union of issued packet lines equals the missed lines,
        per request type -- nothing dropped, nothing invented."""
        w = get_workload("STREAM", num_threads=12, seed=5)
        tracer = MemoryTracer(small_hierarchy(), cycles_per_access=1 / 12)
        co = MemoryCoalescer(CoalescerConfig(), service_time=330)
        missed = {RequestType.LOAD: set(), RequestType.STORE: set()}
        for rec in tracer.trace(w.accesses(8_000)):
            missed[rec.request.rtype].add(rec.request.line)
            co.push(rec.request, rec.cycle)
        co.flush(tracer.cycle + 1)
        issued = {RequestType.LOAD: set(), RequestType.STORE: set()}
        for rec in co.issued:
            issued[rec.request.rtype] |= set(rec.request.lines)
        for rtype in missed:
            assert missed[rtype] <= issued[rtype]

    def test_hmc_accounting_consistent(self):
        r = run_benchmark("Sort", platform=PlatformConfig(accesses=5_000))
        s = r.hmc
        assert s.transferred_bytes == s.payload_bytes + 32 * s.requests
        assert s.requests == s.reads + s.writes
        assert sum(s.size_histogram.values()) == s.requests


class TestRiscvToCoalescer:
    """Real executed RV64I code -> memory tracer -> coalescer -> HMC:
    the complete analogue of the paper's Spike set-up."""

    @pytest.mark.parametrize("kernel", ["vector_add", "gather", "spmv_csr"])
    def test_kernel_trace_coalesces(self, kernel):
        accesses = []
        k = ALL_KERNELS[kernel]()
        core = RV64Core(trace_hook=accesses.append)
        k.run(core)
        assert k.verify(core)

        tracer = MemoryTracer(small_hierarchy(), cycles_per_access=1.0)
        device = HMCDevice()
        co = MemoryCoalescer(
            CoalescerConfig(),
            service_time=lambda pkt, cyc: max(
                1,
                int(
                    device.service(
                        pkt.addr,
                        pkt.size,
                        is_write=pkt.is_store,
                        arrive_ns=cyc * 0.303,
                        requested_bytes=min(pkt.requested_bytes, pkt.size),
                    ).latency_ns
                    / 0.303
                ),
            ),
        )
        n = 0
        for rec in tracer.trace(iter(accesses)):
            co.push(rec.request, rec.cycle)
            n += 1
        co.flush(tracer.cycle + 1)
        stats = co.stats()
        assert stats.llc_requests == n - sum(
            1 for a in accesses if a.rtype is RequestType.FENCE
        ) or stats.llc_requests <= n
        assert device.stats.requests == stats.hmc_requests
        assert len(co.serviced) == stats.llc_requests

    def test_single_core_sequential_kernel_coalesces(self):
        """vector_add streams three arrays: even a single hart's LLC
        misses form coalescable consecutive-line runs."""
        accesses = []
        k = ALL_KERNELS["vector_add"]()
        core = RV64Core(trace_hook=accesses.append)
        k.run(core)

        tracer = MemoryTracer(small_hierarchy(), cycles_per_access=1.0)
        co = MemoryCoalescer(CoalescerConfig(timeout_cycles=200), service_time=3000)
        for rec in tracer.trace(iter(accesses)):
            co.push(rec.request, rec.cycle)
        co.flush(tracer.cycle + 1)
        assert co.stats().coalescing_efficiency > 0.2


class TestBaselineComparison:
    def test_coalescer_never_issues_more_than_baseline(self):
        for name in ("STREAM", "SG"):
            plat = PlatformConfig(accesses=5_000)
            coal = run_benchmark(name, platform=plat)
            base = run_benchmark(name, platform=plat.with_coalescer(UNCOALESCED_CONFIG))
            assert coal.hmc.requests <= base.hmc.requests

    def test_bank_activations_drop_with_coalescing(self):
        plat = PlatformConfig(accesses=5_000)
        coal = run_benchmark("STREAM", platform=plat)
        base = run_benchmark("STREAM", platform=plat.with_coalescer(UNCOALESCED_CONFIG))
        assert coal.hmc.row_misses <= base.hmc.row_misses
