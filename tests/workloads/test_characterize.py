"""Tests for access-stream characterization, pinning each benchmark's
intended shape (the shapes the paper's per-benchmark results rely on)."""

import pytest

from repro.core.request import Access, RequestType
from repro.workloads.characterize import characterize, profile_benchmark


class TestCharacterize:
    def test_empty(self):
        p = characterize([])
        assert p.accesses == 0
        assert p.lines_per_access == 0.0
        assert p.sharing_fraction == 0.0

    def test_sequential_stream(self):
        accs = [Access(addr=i * 8, size=8) for i in range(64)]
        p = characterize(accs)
        assert p.unit_stride_fraction == 1.0
        assert p.local_stride_fraction == 1.0
        assert p.distinct_lines == 8
        assert p.store_fraction == 0.0

    def test_random_stream(self):
        import random

        rng = random.Random(1)
        accs = [Access(addr=rng.randrange(1 << 24) * 64, size=8) for i in range(200)]
        p = characterize(accs)
        assert p.unit_stride_fraction < 0.05
        assert p.lines_per_access > 0.9

    def test_sharing_detection(self):
        accs = [
            Access(addr=0, size=8, thread_id=0),
            Access(addr=8, size=8, thread_id=1),  # same line, other thread
            Access(addr=64, size=8, thread_id=0),
        ]
        p = characterize(accs)
        assert p.distinct_lines == 2
        assert p.shared_lines == 1
        assert p.sharing_fraction == pytest.approx(0.5)

    def test_per_thread_strides(self):
        """Strides are tracked per thread: interleaving two sequential
        threads must not destroy the unit-stride signal."""
        accs = []
        for i in range(32):
            accs.append(Access(addr=i * 8, size=8, thread_id=0))
            accs.append(Access(addr=1 << 22 | (i * 8), size=8, thread_id=1))
        p = characterize(accs)
        assert p.unit_stride_fraction > 0.95

    def test_woven_arrays_keep_stride_signal(self):
        """A loop body touching two arrays (different regions) still
        registers per-array sequentiality."""
        accs = []
        for i in range(32):
            accs.append(Access(addr=i * 8, size=8))
            accs.append(Access(addr=(1 << 23) + i * 8, size=8))
        p = characterize(accs)
        assert p.unit_stride_fraction > 0.9

    def test_fences_counted_separately(self):
        accs = [
            Access(addr=0, size=8),
            Access(addr=0, size=0, rtype=RequestType.FENCE),
        ]
        p = characterize(accs)
        assert p.fences == 1
        assert p.loads == 1

    def test_size_histogram(self):
        accs = [Access(addr=0, size=4), Access(addr=64, size=16)]
        p = characterize(accs)
        assert p.size_histogram == {4: 1, 16: 1}


class TestBenchmarkShapes:
    """Pin the stream properties that drive each paper result."""

    def test_stream_is_unit_stride(self):
        # Realistic scale so the three arrays live in separate stride
        # regions (tiny traces put them a few hundred bytes apart).
        p = profile_benchmark("STREAM", accesses=24_000, num_threads=12)
        assert p.unit_stride_fraction > 0.4  # woven multi-array loop body
        assert p.local_stride_fraction > 0.4

    def test_sg_is_sparse(self):
        p = profile_benchmark("SG", accesses=6000, num_threads=4)
        # Random gathers/scatters dominate the footprint.
        assert p.lines_per_access > 0.4
        assert p.lines_per_access > 3 * profile_benchmark(
            "STREAM", accesses=6000, num_threads=4
        ).lines_per_access

    def test_ep_is_cache_resident(self):
        p = profile_benchmark("EP", accesses=6000, num_threads=4)
        assert p.footprint_bytes < 1024 * 1024  # small hot tables

    def test_hpcg_uses_16B_elements(self):
        p = profile_benchmark("HPCG", accesses=6000, num_threads=4)
        assert 16 in p.size_histogram
        assert p.size_histogram[16] > 0.2 * (p.loads + p.stores)

    def test_sparselu_shares_pivot_blocks(self):
        p = profile_benchmark("SparseLU", accesses=8000, num_threads=4)
        assert p.sharing_fraction > 0.15

    def test_ssca2_mixes_runs_and_random(self):
        p = profile_benchmark("SSCA2", accesses=6000, num_threads=4)
        assert 0.05 < p.unit_stride_fraction < 0.9

    def test_store_fractions_sane(self):
        for name in ("STREAM", "FT", "SG", "LU"):
            p = profile_benchmark(name, accesses=4000, num_threads=4)
            assert 0.0 < p.store_fraction < 0.6, name
