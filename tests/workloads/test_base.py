"""Tests for the workload framework primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import RequestType
from repro.workloads.base import (
    AccessPhase,
    HEAP_BASE,
    SHARED_BASE,
    Workload,
    cyclic_partition,
    interleave_phases,
    partition_indices,
    shared_heap,
    thread_heap,
    weave,
)


class TestAccessPhase:
    def test_build_broadcasts_scalars(self):
        p = AccessPhase.build(np.array([0, 64, 128]), 8, True)
        assert list(p.sizes) == [8, 8, 8]
        assert list(p.stores) == [True, True, True]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            AccessPhase(
                np.zeros(3, np.int64), np.zeros(2, np.int32), np.zeros(3, bool)
            )

    def test_len(self):
        assert len(AccessPhase.build(np.arange(5), 4)) == 5


class TestWeave:
    def test_elementwise_interleave(self):
        a = AccessPhase.build(np.array([0, 1, 2]), 8)
        b = AccessPhase.build(np.array([10, 11, 12]), 4, True)
        w = weave(a, b)
        assert list(w.addrs) == [0, 10, 1, 11, 2, 12]
        assert list(w.sizes) == [8, 4, 8, 4, 8, 4]
        assert list(w.stores) == [False, True] * 3

    def test_unequal_lengths_rejected(self):
        a = AccessPhase.build(np.array([0]), 8)
        b = AccessPhase.build(np.array([0, 1]), 8)
        with pytest.raises(ValueError):
            weave(a, b)

    def test_empty_args_rejected(self):
        with pytest.raises(ValueError):
            weave()


class TestPartitionIndices:
    def test_chunks_round_robin(self):
        # 2 threads, chunk 2, total 8: t0 gets [0,1,4,5], t1 [2,3,6,7].
        assert list(partition_indices(8, 0, 2, chunk_elems=2)) == [0, 1, 4, 5]
        assert list(partition_indices(8, 1, 2, chunk_elems=2)) == [2, 3, 6, 7]

    def test_ragged_tail(self):
        assert list(partition_indices(5, 1, 2, chunk_elems=2)) == [2, 3]
        assert list(partition_indices(5, 0, 2, chunk_elems=2)) == [0, 1, 4]

    def test_thread_without_work(self):
        assert len(partition_indices(2, 3, 8, chunk_elems=2)) == 0

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            partition_indices(8, 0, 2, chunk_elems=0)

    @given(
        st.integers(1, 500),
        st.integers(1, 12),
        st.integers(1, 16),
    )
    def test_partition_is_exact_cover(self, total, threads, chunk):
        """Property: the per-thread partitions tile [0, total) exactly."""
        seen = np.concatenate(
            [
                partition_indices(total, t, threads, chunk_elems=chunk)
                for t in range(threads)
            ]
        )
        assert sorted(seen.tolist()) == list(range(total))

    def test_cyclic_partition_addresses(self):
        p = cyclic_partition(1000, 8, 8, 0, 2, chunk_elems=2)
        assert list(p.addrs[:2]) == [1000, 1008]


class TestInterleave:
    def _phase(self, start, n):
        return AccessPhase.build(np.arange(start, start + n, dtype=np.int64), 8)

    def test_round_robin_burst_1(self):
        out = list(
            interleave_phases([[self._phase(0, 3)], [self._phase(100, 3)]])
        )
        assert [a.addr for a in out] == [0, 100, 1, 101, 2, 102]
        assert [a.thread_id for a in out] == [0, 1, 0, 1, 0, 1]

    def test_burst_2(self):
        out = list(
            interleave_phases(
                [[self._phase(0, 4)], [self._phase(100, 4)]], burst=2
            )
        )
        assert [a.addr for a in out] == [0, 1, 100, 101, 2, 3, 102, 103]

    def test_uneven_threads_drain(self):
        out = list(
            interleave_phases([[self._phase(0, 5)], [self._phase(100, 1)]])
        )
        assert len(out) == 6
        assert [a.addr for a in out[-3:]] == [2, 3, 4]

    def test_empty_thread(self):
        out = list(interleave_phases([[self._phase(0, 2)], []]))
        assert len(out) == 2

    def test_bad_burst(self):
        with pytest.raises(ValueError):
            list(interleave_phases([[]], burst=0))


class TestHeapLayout:
    def test_thread_heaps_disjoint(self):
        spans = [(thread_heap(t), thread_heap(t) + 0x2000_0000) for t in range(12)]
        for i in range(11):
            assert spans[i][1] <= spans[i + 1][0]

    def test_shared_region_above_thread_heaps(self):
        assert shared_heap(0) >= thread_heap(11) + 0x2000_0000

    def test_all_within_8gb_hmc(self):
        assert thread_heap(11) + 0x2000_0000 <= 8 * 1024**3
        assert SHARED_BASE < 8 * 1024**3
        assert HEAP_BASE > 0


class TestWorkloadBase:
    def test_rejects_bad_threads(self):
        class Dummy(Workload):
            def thread_phases(self, tid, n, rng):
                return []

        with pytest.raises(ValueError):
            Dummy(num_threads=0)

    def test_helpers(self):
        class Dummy(Workload):
            def thread_phases(self, tid, n, rng):
                return []

        w = Dummy(num_threads=2)
        seq = w.sequential(0, 4, 8)
        assert list(seq.addrs) == [0, 8, 16, 24]
        stri = w.strided(0, 3, 8, 64)
        assert list(stri.addrs) == [0, 64, 128]
        rng = np.random.default_rng(0)
        rnd = w.random_in(0, 1024, 10, 8, rng)
        assert len(rnd) == 10
        assert all(0 <= a < 1024 for a in rnd.addrs)
