"""Tests for the 12 benchmark generators."""

import numpy as np
import pytest

from repro.core.request import RequestType
from repro.workloads import BENCHMARKS, get_workload

HMC_CAPACITY = 8 * 1024**3

PAPER_BENCHMARKS = {
    "SG", "HPCG", "SSCA2", "STREAM", "Sort", "SparseLU",
    "EP", "FT", "LU", "SP", "CG", "MG",
}


class TestRegistry:
    def test_twelve_benchmarks(self):
        """Section 5.2: the paper evaluates 12 benchmarks."""
        assert len(BENCHMARKS) == 12
        assert set(BENCHMARKS) == PAPER_BENCHMARKS

    def test_lookup_case_insensitive(self):
        assert get_workload("hpcg").name == "HPCG"
        assert get_workload("STREAM").name == "STREAM"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_suites_assigned(self):
        for name in BENCHMARKS:
            w = get_workload(name)
            assert w.suite, name
            assert w.element_size in (4, 8, 16), name

    def test_hpcg_element_is_16B(self):
        """Figure 10: HPCG's dominant request size is 16 B."""
        assert get_workload("HPCG").element_size == 16

    def test_ft_element_is_complex(self):
        assert get_workload("FT").element_size == 16


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestEveryBenchmark:
    def test_generates_accesses(self, name):
        w = get_workload(name, num_threads=4, seed=7)
        accesses = list(w.accesses(4000))
        assert len(accesses) > 1000

    def test_addresses_fit_hmc(self, name):
        w = get_workload(name, num_threads=4, seed=7)
        for a in w.accesses(2000):
            assert 0 <= a.addr < HMC_CAPACITY, name
            assert 1 <= a.size <= 64

    def test_deterministic_per_seed(self, name):
        def snapshot(seed):
            w = get_workload(name, num_threads=4, seed=seed)
            return [(a.addr, a.size, a.rtype) for a in w.accesses(1500)]

        assert snapshot(3) == snapshot(3)

    def test_thread_ids_valid(self, name):
        w = get_workload(name, num_threads=4, seed=7)
        tids = {a.thread_id for a in w.accesses(2000)}
        assert tids <= {0, 1, 2, 3}
        assert len(tids) >= 2  # work is actually distributed

    def test_has_loads(self, name):
        w = get_workload(name, num_threads=4, seed=7)
        types = {a.rtype for a in w.accesses(2000)}
        assert RequestType.LOAD in types


class TestPatternShapes:
    """Spot-check the pattern each generator is meant to produce."""

    def test_stream_has_stores(self):
        w = get_workload("STREAM", num_threads=4, seed=1)
        accs = list(w.accesses(4000))
        frac = sum(a.is_store for a in accs) / len(accs)
        assert 0.3 < frac < 0.5  # copy/scale 1:1, add/triad 2:1

    def test_ep_is_read_dominated_and_compact(self):
        w = get_workload("EP", num_threads=4, seed=1)
        accs = list(w.accesses(4000))
        assert sum(a.is_store for a in accs) == 0
        # Most accesses land in the small per-thread tables.
        spans = {}
        for a in accs:
            spans.setdefault(a.thread_id, set()).add(a.addr // 4096)
        for pages in spans.values():
            assert len(pages) < 600

    def test_sg_mixes_random_and_sequential(self):
        w = get_workload("SG", num_threads=4, seed=1)
        accs = list(w.accesses(6000))
        sizes = {a.size for a in accs}
        assert sizes == {4, 8}  # 4 B indices, 8 B data

    def test_ssca2_power_law_runs(self):
        w = get_workload("SSCA2", num_threads=2, seed=1)
        accs = list(w.accesses(6000))
        assert any(a.size == 4 for a in accs)  # state updates
        assert any(a.is_store for a in accs)

    def test_shared_arrays_are_actually_shared(self):
        """Multiple threads must touch the same shared lines (the
        sharing that feeds second-phase coalescing)."""
        w = get_workload("SparseLU", num_threads=4, seed=1)
        owners: dict[int, set[int]] = {}
        for a in w.accesses(8000):
            owners.setdefault(a.addr // 64, set()).add(a.thread_id)
        shared_lines = sum(1 for s in owners.values() if len(s) > 1)
        assert shared_lines > 50

    def test_stream_lockstep_produces_consecutive_lines(self):
        """Section 3.1: the aggregated stream contains runs of
        consecutive cache lines even though each thread is strided."""
        w = get_workload("STREAM", num_threads=4, seed=1)
        lines = [a.addr // 64 for a in w.accesses(4000)]
        window = lines[:64]
        uniq = sorted(set(window))
        runs = sum(
            1 for i in range(1, len(uniq)) if uniq[i] == uniq[i - 1] + 1
        )
        assert runs > len(uniq) // 3

    def test_hpcg_has_16B_matrix_loads(self):
        w = get_workload("HPCG", num_threads=4, seed=1)
        accs = list(w.accesses(4000))
        assert any(a.size == 16 for a in accs)
