"""Tests for the vault/bank and link models."""

import pytest

from repro.hmc.link import HMCLink
from repro.hmc.timing import HMCTimingConfig
from repro.hmc.vault import Bank, Vault

CFG = HMCTimingConfig()


class TestAddressMapping:
    def test_blocks_interleave_across_vaults(self):
        seen = {CFG.vault_of(i * 256) for i in range(CFG.num_vaults)}
        assert seen == set(range(32))

    def test_same_block_same_vault(self):
        assert CFG.vault_of(0) == CFG.vault_of(255)
        assert CFG.vault_of(0) != CFG.vault_of(256)

    def test_bank_mapping_wraps(self):
        stride = 256 * CFG.num_vaults
        banks = {CFG.bank_of(i * stride) for i in range(CFG.banks_per_vault)}
        assert banks == set(range(16))

    def test_row_changes_after_row_bytes_worth_of_blocks(self):
        stride = 256 * CFG.num_vaults * CFG.banks_per_vault
        blocks_per_row = CFG.row_bytes // 256
        assert CFG.row_of(0) == CFG.row_of((blocks_per_row - 1) * stride)
        assert CFG.row_of(0) != CFG.row_of(blocks_per_row * stride)

    def test_validation(self):
        with pytest.raises(ValueError):
            HMCTimingConfig(num_vaults=3)
        with pytest.raises(ValueError):
            HMCTimingConfig(block_bytes=100)
        with pytest.raises(ValueError):
            HMCTimingConfig(link_bandwidth_gbps=0)


class TestBank:
    def test_first_access_misses(self):
        b = Bank()
        assert b.access(5) is False
        assert b.activations == 1

    def test_open_row_hits(self):
        b = Bank()
        b.access(5)
        assert b.access(5) is True
        assert b.activations == 1

    def test_conflict_reopens(self):
        b = Bank()
        b.access(5)
        assert b.access(6) is False
        assert b.access(5) is False
        assert b.activations == 3


class TestVault:
    def test_row_hit_faster_than_miss(self):
        v = Vault(0, CFG)
        t_miss, hit1 = v.service(0, 64, 0.0)
        v2 = Vault(0, CFG)
        v2.service(0, 64, 0.0)
        t_hit, hit2 = v2.service(0, 64, t_miss)
        assert not hit1 and hit2
        assert (t_hit - t_miss) < t_miss

    def test_fifo_queueing(self):
        v = Vault(0, CFG)
        done1, _ = v.service(0, 256, 0.0)
        done2, _ = v.service(0, 256, 0.0)
        assert done2 > done1
        assert v.stats.queued_ns > 0

    def test_idle_vault_starts_immediately(self):
        v = Vault(0, CFG)
        done, _ = v.service(0, 64, 100.0)
        assert done == pytest.approx(100.0 + CFG.row_miss_ns() + CFG.vault_transfer_ns(64))

    def test_larger_payload_takes_longer(self):
        v1, v2 = Vault(0, CFG), Vault(0, CFG)
        d1, _ = v1.service(0, 64, 0.0)
        d2, _ = v2.service(0, 256, 0.0)
        assert d2 > d1

    def test_rejects_empty_payload(self):
        with pytest.raises(ValueError):
            Vault(0, CFG).service(0, 0, 0.0)

    def test_stats_accumulate(self):
        v = Vault(0, CFG)
        for i in range(10):
            v.service(i * 256 * 32 * 16 * 64, 64, 0.0)  # force row misses
        assert v.stats.requests == 10
        assert v.stats.row_hit_rate < 1.0
        assert v.stats.busy_ns > 0


class TestLink:
    def test_transfer_accounts_control(self):
        link = HMCLink(CFG)
        link.transfer(64, 0.0, is_write=False)
        assert link.stats.payload_bytes == 64
        assert link.stats.control_bytes == 32
        assert link.stats.transferred_bytes == 96

    def test_serialization_delay(self):
        link = HMCLink(CFG)
        t = link.transfer(256, 0.0, is_write=True)
        # A 256 B write needs 17 request FLITs before the vault starts.
        assert t == pytest.approx(CFG.link_transfer_ns(17))

    def test_back_to_back_serialize(self):
        link = HMCLink(CFG)
        link.transfer(256, 0.0, is_write=False)
        t2 = link.transfer(256, 0.0, is_write=False)
        assert t2 > CFG.link_transfer_ns(1)

    def test_control_fraction(self):
        link = HMCLink(CFG)
        for _ in range(4):
            link.transfer(16, 0.0, is_write=False)
        assert link.stats.control_fraction == pytest.approx(2 / 3)

    def test_utilization_bounds(self):
        link = HMCLink(CFG)
        link.transfer(64, 0.0, is_write=False)
        assert 0.0 < link.utilization(1000.0) <= 1.0
        assert link.utilization(0.0) == 0.0


class TestPagePolicy:
    def test_closed_page_never_hits(self):
        from repro.hmc.timing import HMCTimingConfig
        cfg = HMCTimingConfig(page_policy="closed")
        v = Vault(0, cfg)
        v.service(0, 64, 0.0)
        _, hit = v.service(0, 64, 1000.0)
        assert not hit

    def test_closed_page_cheaper_than_conflict(self):
        """Closed page pays activate+CAS, open-page conflict pays
        precharge+activate+CAS."""
        from repro.hmc.timing import HMCTimingConfig
        cfg = HMCTimingConfig(page_policy="closed")
        assert cfg.closed_access_ns() < cfg.row_miss_ns()
        assert cfg.closed_access_ns() > cfg.row_hit_ns()

    def test_bad_policy_rejected(self):
        from repro.hmc.timing import HMCTimingConfig
        with pytest.raises(ValueError):
            HMCTimingConfig(page_policy="adaptive")

    def test_random_traffic_prefers_closed_page(self):
        """Row-conflict-heavy traffic completes sooner under the
        closed-page policy."""
        import random
        from repro.hmc.timing import HMCTimingConfig

        rng = random.Random(9)
        # Same-bank, alternating rows: worst case for open page.
        stride = 256 * 32 * 16  # same vault 0, same bank 0, next row region
        addrs = [rng.randrange(2) * stride * 64 for _ in range(50)]

        def makespan(policy):
            v = Vault(0, HMCTimingConfig(page_policy=policy))
            done = 0.0
            for a in addrs:
                done, _ = v.service(a, 64, 0.0)
            return done

        assert makespan("closed") < makespan("open")
