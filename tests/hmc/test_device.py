"""Tests for the HMC device front-end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmc.device import HMCDevice
from repro.hmc.timing import HMCTimingConfig


class TestService:
    def test_basic_read(self):
        dev = HMCDevice()
        resp = dev.service(0, 64, arrive_ns=0.0)
        assert resp.latency_ns > 0
        assert not resp.is_write
        assert resp.vault == 0

    def test_latency_in_plausible_range(self):
        """The paper assumes HMC accesses take on the order of 100 ns."""
        dev = HMCDevice()
        resp = dev.service(4096, 64, arrive_ns=0.0)
        assert 30.0 <= resp.latency_ns <= 300.0

    def test_rejects_oversized_request(self):
        dev = HMCDevice()
        with pytest.raises(ValueError):
            dev.service(0, 512)

    def test_rejects_block_straddle(self):
        dev = HMCDevice()
        with pytest.raises(ValueError):
            dev.service(192, 128)  # crosses the 256 B boundary at 256

    def test_rejects_out_of_range(self):
        dev = HMCDevice(HMCTimingConfig())
        with pytest.raises(ValueError):
            dev.service(8 * 1024**3, 64)

    def test_contiguous_blocks_hit_different_vaults(self):
        dev = HMCDevice()
        r1 = dev.service(0, 256)
        r2 = dev.service(256, 256)
        assert r1.vault != r2.vault

    def test_parallel_vaults_overlap(self):
        """Requests to different vaults do not queue behind each other."""
        dev = HMCDevice()
        r1 = dev.service(0, 256, arrive_ns=0.0)
        r2 = dev.service(256, 256, arrive_ns=0.0)
        serial = HMCDevice()
        s1 = serial.service(0, 256, arrive_ns=0.0)
        s2 = serial.service(0, 256, arrive_ns=0.0)
        assert r2.complete_ns < s2.complete_ns

    def test_same_bank_conflict_queues(self):
        dev = HMCDevice()
        r1 = dev.service(0, 64, arrive_ns=0.0)
        r2 = dev.service(0, 64, arrive_ns=0.0)
        assert r2.complete_ns > r1.complete_ns


class TestRowBehaviour:
    def test_sequential_same_block_rows_hit(self):
        dev = HMCDevice()
        dev.service(0, 64)
        r = dev.service(64, 64)
        assert r.row_hit

    def test_one_big_read_fewer_activations_than_16_small(self):
        """Section 2.2.1: 16 small reads of a block re-touch the bank
        16 times; one 256 B read touches it once."""
        small = HMCDevice()
        for i in range(16):
            small.service(i * 16, 16)
        big = HMCDevice()
        big.service(0, 256)
        small_act = sum(b.activations for v in small.vaults for b in v.banks)
        big_act = sum(b.activations for v in big.vaults for b in v.banks)
        assert big_act == 1
        assert small.stats.requests == 16
        # All 16 hit the same open row after the first activation.
        assert small_act == 1
        # But the small version still pays 16 transactions of latency.
        assert small.stats.total_latency_ns > big.stats.total_latency_ns


class TestStats:
    def test_traffic_accounting(self):
        dev = HMCDevice()
        dev.service(0, 64, requested_bytes=8)
        dev.service(256, 64, requested_bytes=64)
        s = dev.stats
        assert s.requests == 2
        assert s.payload_bytes == 128
        assert s.requested_bytes == 72
        assert s.control_bytes == 64
        assert s.transferred_bytes == 192

    def test_bandwidth_efficiency_matches_eq1(self):
        dev = HMCDevice()
        dev.service(0, 64, requested_bytes=8)
        assert dev.stats.bandwidth_efficiency == pytest.approx(8 / 96)
        assert dev.stats.payload_efficiency == pytest.approx(64 / 96)

    def test_size_histogram(self):
        dev = HMCDevice()
        for size in (64, 64, 128, 256):
            dev.service(0, size)
        assert dev.stats.size_histogram == {64: 2, 128: 1, 256: 1}

    def test_reads_vs_writes(self):
        dev = HMCDevice()
        dev.service(0, 64, is_write=False)
        dev.service(256, 64, is_write=True)
        assert dev.stats.reads == 1
        assert dev.stats.writes == 1

    def test_control_bytes_saved(self):
        dev = HMCDevice()
        dev.service(0, 256)
        assert dev.control_bytes_saved_vs(16) == 15 * 32

    def test_mean_latency(self):
        dev = HMCDevice()
        for i in range(4):
            dev.service(i * 256, 64)
        assert dev.stats.mean_latency_ns > 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**20),
                st.sampled_from([16, 32, 64, 128, 256]),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_conservation_property(self, reqs):
        """Property: transferred = payload + 32 B per request, always;
        completion times are monotone per vault."""
        dev = HMCDevice()
        t = 0.0
        for block, size, w in reqs:
            addr = block * 256
            dev.service(addr, size, is_write=w, arrive_ns=t)
            t += 1.0
        s = dev.stats
        assert s.transferred_bytes == s.payload_bytes + 32 * s.requests
        assert s.requests == len(reqs)
        for v in dev.vaults:
            assert v.stats.requests == sum(
                1 for b, _, _ in reqs if dev.config.vault_of(b * 256) == v.index
            )
