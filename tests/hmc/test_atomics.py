"""Tests for HMC 2.1 atomic requests."""

import pytest

from repro.hmc.atomics import (
    ATOMIC_ALU_NS,
    AtomicOp,
    atomic_traffic,
    rmw_traffic_without_atomics,
)
from repro.hmc.device import HMCDevice


class TestTrafficModel:
    def test_plain_atomic_moves_48_bytes(self):
        t = atomic_traffic(AtomicOp.ADD16)
        assert t.payload_bytes == 16
        assert t.control_bytes == 32
        assert t.transferred_bytes == 48

    def test_returning_atomic_moves_64_bytes(self):
        t = atomic_traffic(AtomicOp.CAS16)
        assert t.transferred_bytes == 64

    def test_returns_data_classification(self):
        assert AtomicOp.CAS16.returns_data
        assert AtomicOp.SWAP16.returns_data
        assert not AtomicOp.ADD16.returns_data
        assert not AtomicOp.DUAL_ADD8.returns_data

    def test_atomic_beats_cpu_rmw_by_4x(self):
        """One 48 B atomic vs a 192 B load+writeback pair."""
        assert rmw_traffic_without_atomics() == 192
        ratio = rmw_traffic_without_atomics() / atomic_traffic(AtomicOp.ADD16).transferred_bytes
        assert ratio == pytest.approx(4.0)


class TestDeviceAtomics:
    def test_basic_atomic(self):
        dev = HMCDevice()
        resp = dev.service_atomic(0x1000, AtomicOp.ADD16, arrive_ns=0.0)
        assert resp.is_write
        assert resp.latency_ns > ATOMIC_ALU_NS
        assert dev.stats.requests == 1
        assert dev.stats.transferred_bytes == 48

    def test_cas_accounts_return_flit(self):
        dev = HMCDevice()
        dev.service_atomic(0, AtomicOp.CAS16)
        assert dev.stats.transferred_bytes == 64

    def test_atomics_hit_open_rows(self):
        dev = HMCDevice()
        dev.service_atomic(0, AtomicOp.ADD16)
        resp = dev.service_atomic(16, AtomicOp.ADD16, arrive_ns=200.0)
        assert resp.row_hit

    def test_out_of_range_rejected(self):
        dev = HMCDevice()
        with pytest.raises(ValueError):
            dev.service_atomic(8 * 1024**3, AtomicOp.ADD16)

    def test_mixed_with_reads(self):
        dev = HMCDevice()
        dev.service(0, 64)
        dev.service_atomic(256, AtomicOp.INC8)
        assert dev.stats.requests == 2
        assert dev.stats.reads == 1
        assert dev.stats.writes == 1

    def test_atomic_latency_cheaper_than_rmw_pair(self):
        """A single atomic completes faster than a dependent
        load-then-writeback to the same line."""
        atomic_dev = HMCDevice()
        a = atomic_dev.service_atomic(0, AtomicOp.ADD16, arrive_ns=0.0)

        rmw_dev = HMCDevice()
        load = rmw_dev.service(0, 64, arrive_ns=0.0)
        store = rmw_dev.service(
            0, 64, is_write=True, arrive_ns=load.complete_ns
        )
        assert a.complete_ns < store.complete_ns
