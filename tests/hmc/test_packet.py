"""Tests for HMC packet framing and Equation 1 arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hmc.packet import (
    FLIT_BYTES,
    REQUEST_CONTROL_BYTES,
    bandwidth_efficiency,
    control_bytes_for_total,
    control_overhead_fraction,
    packet_flits,
    payload_flits,
    total_flits,
    transferred_bytes,
)

sizes = st.sampled_from([16, 32, 48, 64, 80, 96, 112, 128, 256])


class TestFraming:
    def test_flit_is_16_bytes(self):
        assert FLIT_BYTES == 16
        assert REQUEST_CONTROL_BYTES == 32

    def test_256B_read_is_18_flits(self):
        """Section 2.2.3: a 256 B request is 18 FLITs."""
        assert total_flits(256, is_write=False) == 18

    def test_read_payload_in_response(self):
        req, resp = packet_flits(64, is_write=False)
        assert req == 1
        assert resp == 5

    def test_write_payload_in_request(self):
        req, resp = packet_flits(64, is_write=True)
        assert req == 5
        assert resp == 1

    @given(sizes, st.booleans())
    def test_read_write_symmetric_total(self, size, is_write):
        assert total_flits(size, is_write=is_write) == size // 16 + 2

    def test_rejects_non_flit_multiple(self):
        with pytest.raises(ValueError):
            payload_flits(10)
        with pytest.raises(ValueError):
            packet_flits(0, is_write=False)


class TestEquation1:
    """Figure 1's exact values."""

    @pytest.mark.parametrize(
        "size,eff",
        [(16, 1 / 3), (32, 0.5), (64, 2 / 3), (128, 0.8), (256, 8 / 9)],
    )
    def test_bandwidth_efficiency_curve(self, size, eff):
        assert bandwidth_efficiency(size) == pytest.approx(eff)

    @pytest.mark.parametrize(
        "size,ovh",
        [(16, 2 / 3), (32, 0.5), (64, 1 / 3), (128, 0.2), (256, 1 / 9)],
    )
    def test_control_overhead_curve(self, size, ovh):
        assert control_overhead_fraction(size) == pytest.approx(ovh)

    @given(sizes)
    def test_efficiency_plus_overhead_is_one(self, size):
        assert bandwidth_efficiency(size) + control_overhead_fraction(size) == pytest.approx(1.0)

    def test_paper_example_16x16B_vs_256B(self):
        """Section 2.2.2: 16x16 B loads move 768 B (512 B control);
        one 256 B load moves 288 B (32 B control): 2.67x efficiency."""
        uncoalesced_moved = 16 * transferred_bytes(16)
        assert uncoalesced_moved == 768
        assert 16 * REQUEST_CONTROL_BYTES == 512
        coalesced_moved = transferred_bytes(256)
        assert coalesced_moved == 288
        ratio = bandwidth_efficiency(256) / bandwidth_efficiency(16)
        assert ratio == pytest.approx(8 / 3, rel=1e-6)  # ~2.67x

    def test_small_payload_in_64B_line(self):
        """An 8 B request serviced by a 64 B line fill moves 96 B."""
        assert bandwidth_efficiency(8, 64) == pytest.approx(8 / 96)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bandwidth_efficiency(-1, 64)
        with pytest.raises(ValueError):
            bandwidth_efficiency(16, 0)

    @given(sizes)
    def test_efficiency_monotone_in_size(self, size):
        if size > 16:
            assert bandwidth_efficiency(size) > bandwidth_efficiency(16)


class TestControlSweep:
    """Figure 2's control-traffic model."""

    def test_exact_fit(self):
        assert control_bytes_for_total(1024, 256) == 4 * 32
        assert control_bytes_for_total(1024, 16) == 64 * 32

    def test_partial_request_pays_full_control(self):
        assert control_bytes_for_total(100, 64) == 2 * 32

    def test_zero_data(self):
        assert control_bytes_for_total(0, 64) == 0

    @given(st.integers(1, 10**7), sizes)
    def test_smaller_requests_never_cheaper(self, total, size):
        assert control_bytes_for_total(total, 16) >= control_bytes_for_total(total, size)

    @given(st.integers(0, 10**7))
    def test_large_packets_16x_cheaper_asymptotically(self, total):
        small = control_bytes_for_total(total, 16)
        big = control_bytes_for_total(total, 256)
        assert small >= big
        if total % 256 == 0:
            assert small == 16 * big
