"""Re-entrancy of the deferred-metrics batching on the HMC stack.

``defer_metrics()``/``apply_deferred_metrics()`` batch the per-packet
registry writes of the device, link and vaults into one flush.  The
re-entrancy contract under test: a *second* ``defer_metrics()`` while
a batch is pending must keep the batch already accumulated (a bare
re-zeroing would silently drop every sample taken so far), and a
second ``apply_deferred_metrics()`` after the flush must be a no-op --
so nested callers (driver + kernels) may defer/apply unconditionally
and the registry still ends up identical to the live, unbatched path.
"""

from repro.hmc.device import HMCDevice
from repro.hmc.link import HMCLink
from repro.hmc.timing import HMCTimingConfig
from repro.hmc.vault import Vault
from repro.obs import MetricsRegistry

_CFG = HMCTimingConfig()

#: Deterministic little traffic pattern: mixed sizes, vaults, rows,
#: reads and writes, with repeats for row hits.
_TRAFFIC = [
    (0, 64, False),
    (256, 128, True),
    (0, 64, False),
    (4096, 256, False),
    (1 << 20, 32, True),
    (64, 16, False),
    (256, 128, True),
    (1 << 25, 64, False),
]


def _flat(registry: MetricsRegistry) -> dict:
    """Order-independent snapshot of every sample in ``registry``."""
    out: dict = {}
    for metric in registry.metrics():
        if metric.kind == "histogram":
            out[metric.name] = sorted(
                (
                    tuple(sorted(labels.items())),
                    series.count,
                    series.sum,
                    series.min,
                    series.max,
                    tuple(series.counts),
                )
                for labels, series in metric.samples()
            )
        else:
            out[metric.name] = sorted(
                (tuple(sorted(labels.items())), value)
                for labels, value in metric.samples()
            )
    return out


class TestDeviceReentrancy:
    def _drive(self, device: HMCDevice, rows, start: int = 0) -> None:
        for i, (addr, size, is_write) in enumerate(rows, start):
            device.service(addr, size, is_write=is_write, arrive_ns=float(i))

    def test_double_defer_keeps_the_pending_batch(self):
        live = HMCDevice(_CFG, registry=MetricsRegistry())
        self._drive(live, _TRAFFIC)

        deferred = HMCDevice(_CFG, registry=MetricsRegistry())
        deferred.defer_metrics()
        self._drive(deferred, _TRAFFIC[:4])
        deferred.defer_metrics()  # re-entrant: must not drop the batch
        self._drive(deferred, _TRAFFIC[4:], start=4)
        deferred.apply_deferred_metrics()

        assert _flat(deferred.registry) == _flat(live.registry)
        assert deferred.stats == live.stats

    def test_apply_is_idempotent(self):
        device = HMCDevice(_CFG, registry=MetricsRegistry())
        device.defer_metrics()
        self._drive(device, _TRAFFIC)
        device.apply_deferred_metrics()
        snapshot = _flat(device.registry)
        device.apply_deferred_metrics()  # second flush: no-op
        assert _flat(device.registry) == snapshot

    def test_apply_without_defer_is_a_noop(self):
        device = HMCDevice(_CFG, registry=MetricsRegistry())
        self._drive(device, _TRAFFIC)
        snapshot = _flat(device.registry)
        device.apply_deferred_metrics()
        assert _flat(device.registry) == snapshot


class TestVaultReentrancy:
    def _drive(self, vault: Vault, rows, start: int = 0) -> None:
        for i, (addr, size, _w) in enumerate(rows, start):
            vault.service(addr, size, float(i))

    def test_double_defer_keeps_the_pending_batch(self):
        live = Vault(0, _CFG, registry=MetricsRegistry())
        self._drive(live, _TRAFFIC)

        deferred = Vault(0, _CFG, registry=MetricsRegistry())
        deferred.defer_metrics()
        self._drive(deferred, _TRAFFIC[:3])
        assert deferred._a_requests == 3
        deferred.defer_metrics()
        assert deferred._a_requests == 3  # batch survived the re-defer
        self._drive(deferred, _TRAFFIC[3:], start=3)
        deferred.apply_deferred_metrics()

        assert _flat(deferred.registry) == _flat(live.registry)
        assert deferred.stats == live.stats

    def test_apply_pairs_with_one_defer(self):
        vault = Vault(0, _CFG, registry=MetricsRegistry())
        vault.defer_metrics()
        self._drive(vault, _TRAFFIC)
        vault.apply_deferred_metrics()
        snapshot = _flat(vault.registry)
        vault.apply_deferred_metrics()
        assert _flat(vault.registry) == snapshot
        assert not vault._a_waits  # flushed, not re-applied


class TestLinkReentrancy:
    def _drive(self, link: HMCLink, rows, start: int = 0) -> None:
        for i, (_addr, size, is_write) in enumerate(rows, start):
            link.transfer(size, float(i), is_write=is_write)

    def test_double_defer_keeps_the_pending_batch(self):
        live = HMCLink(_CFG, registry=MetricsRegistry())
        self._drive(live, _TRAFFIC)

        deferred = HMCLink(_CFG, registry=MetricsRegistry())
        deferred.defer_metrics()
        self._drive(deferred, _TRAFFIC[:5])
        pending = deferred._a_transactions
        deferred.defer_metrics()
        assert deferred._a_transactions == pending
        self._drive(deferred, _TRAFFIC[5:], start=5)
        deferred.apply_deferred_metrics()

        assert _flat(deferred.registry) == _flat(live.registry)
        assert deferred.stats == live.stats

    def test_apply_is_idempotent(self):
        link = HMCLink(_CFG, registry=MetricsRegistry())
        link.defer_metrics()
        self._drive(link, _TRAFFIC)
        link.apply_deferred_metrics()
        snapshot = _flat(link.registry)
        link.apply_deferred_metrics()
        assert _flat(link.registry) == snapshot
