"""Tests for the per-figure experiment runners."""

import pytest

from repro.sim.driver import PlatformConfig
from repro.sim.experiments import (
    BENCHMARK_ORDER,
    EvaluationSuite,
    fig1_bandwidth_efficiency,
    fig2_control_overhead,
    fig14_timeout_sweep,
)

#: Tiny platform + benchmark subset so the experiment tests stay fast.
FAST = PlatformConfig(accesses=4_000)
SUBSET = ("STREAM", "SG", "FT")


@pytest.fixture(scope="module")
def suite():
    return EvaluationSuite(FAST, benchmarks=SUBSET)


class TestAnalyticFigures:
    def test_fig1_matches_paper_exactly(self):
        data = fig1_bandwidth_efficiency()
        by_size = {r[0]: r[1] for r in data.rows}
        assert by_size[16] == pytest.approx(0.3333, abs=1e-4)
        assert by_size[64] == pytest.approx(0.6667, abs=1e-4)
        assert by_size[256] == pytest.approx(0.8889, abs=1e-4)

    def test_fig1_rows_monotone(self):
        data = fig1_bandwidth_efficiency()
        effs = [r[1] for r in data.rows]
        assert effs == sorted(effs)

    def test_fig2_ratio_is_16x(self):
        data = fig2_control_overhead()
        assert data.summary["ratio_16B_vs_256B"] == pytest.approx(16.0)

    def test_fig2_monotone_in_total(self):
        data = fig2_control_overhead()
        col16 = [r[1] for r in data.rows]
        assert col16 == sorted(col16)


class TestSuiteCaching:
    def test_run_is_cached(self, suite):
        a = suite.run("STREAM", "combined")
        b = suite.run("STREAM", "combined")
        assert a is b

    def test_unknown_config_raises(self, suite):
        with pytest.raises(KeyError):
            suite.run("STREAM", "bogus")


class TestTraceFigures:
    def test_fig8_structure_and_ordering(self, suite):
        data = suite.fig8_coalescing_efficiency()
        assert [r[0] for r in data.rows] == list(SUBSET)
        for row in data.rows:
            name, mshr, dmc, combined = row
            assert 0 <= mshr <= 1 and 0 <= dmc <= 1 and 0 <= combined <= 1
            # Two-phase coalescing never loses to either single phase.
            assert combined >= max(mshr, dmc) - 0.02, name
        assert data.summary["avg_combined"] >= data.summary["avg_dmc_only"] - 0.02

    def test_fig9_coalesced_beats_raw(self, suite):
        data = suite.fig9_bandwidth_efficiency()
        assert data.summary["avg_coalesced"] > data.summary["avg_raw"]
        for name, raw, coal in data.rows:
            assert coal >= raw - 1e-9, name

    def test_fig10_shares_sum_to_one(self, suite):
        data = suite.fig10_request_distribution("STREAM")
        shares = [r[3] for r in data.rows]
        assert sum(shares) == pytest.approx(1.0)
        assert data.summary["total_requests"] > 0

    def test_fig10_hpcg_dominated_by_16B(self):
        local = EvaluationSuite(FAST, benchmarks=("HPCG",))
        data = local.fig10_request_distribution("HPCG")
        assert data.summary["share_16B_loads"] > 0.25

    def test_fig11_savings_positive_for_coalescable(self, suite):
        data = suite.fig11_bandwidth_saving()
        by_name = {r[0]: r[2] for r in data.rows}
        assert by_name["STREAM"] > 0
        assert by_name["FT"] > 0

    def test_fig12_latency_range(self, suite):
        data = suite.fig12_dmc_latency()
        for name, ns in data.rows:
            assert 0 < ns < 30, name

    def test_fig13_fill_hides_in_memory_latency(self, suite):
        data = suite.fig13_crq_fill_time()
        for name, ns in data.rows:
            assert 0 < ns < 100, name  # far below ~100 ns HMC access

    def test_fig15_improvement_bounds(self, suite):
        data = suite.fig15_performance()
        for name, imp in data.rows:
            assert -0.1 < imp < 0.6, name
        assert data.summary["avg_improvement"] > 0


class TestTimeoutSweep:
    def test_fig14_shape(self):
        data = fig14_timeout_sweep(
            timeouts=(8, 16, 24),
            platform=PlatformConfig(accesses=3_000),
            benchmarks=("STREAM",),
        )
        assert data.headers == ["benchmark", "T=8", "T=16", "T=24"]
        (row,) = data.rows
        assert all(v > 0 for v in row[1:])
        # A starved timeout (8 < pipeline interval) congests the
        # sorter; adequate timeouts are far cheaper.
        assert row[1] > row[2]


class TestBenchmarkOrder:
    def test_order_is_papers_twelve(self):
        assert len(BENCHMARK_ORDER) == 12
        assert BENCHMARK_ORDER[0] == "SG"
