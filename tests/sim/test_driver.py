"""Tests for the end-to-end simulation driver."""

import pytest

from repro.core.config import (
    CoalescerConfig,
    DMC_ONLY_CONFIG,
    MSHR_ONLY_CONFIG,
    UNCOALESCED_CONFIG,
)
from repro.sim.driver import (
    PlatformConfig,
    run_baseline_and_coalesced,
    run_benchmark,
    runtime_improvement,
)

SMALL = PlatformConfig(accesses=6_000)


class TestPlatformConfig:
    def test_defaults_match_paper(self):
        p = PlatformConfig()
        assert p.num_threads == 12
        assert p.clock_ghz == 3.3
        assert p.coalescer.num_mshrs == 16
        assert p.hmc.capacity_bytes == 8 * 1024**3
        assert p.hmc.block_bytes == 256

    def test_with_coalescer_swaps_only_coalescer(self):
        p = PlatformConfig()
        q = p.with_coalescer(UNCOALESCED_CONFIG)
        assert q.coalescer is UNCOALESCED_CONFIG
        assert q.hierarchy == p.hierarchy
        assert q.accesses == p.accesses


class TestRunBenchmark:
    def test_stream_end_to_end(self):
        r = run_benchmark("STREAM", platform=SMALL)
        assert r.benchmark == "STREAM"
        assert r.tracer.cpu_accesses > 5000
        assert r.coalescer.llc_requests > 0
        assert r.hmc.requests > 0
        assert r.hmc.requests <= r.coalescer.llc_requests

    def test_issued_equals_hmc_requests(self):
        """Every packet the coalescer issues hits the device once."""
        r = run_benchmark("STREAM", platform=SMALL)
        assert r.coalescer.hmc_requests == r.hmc.requests

    def test_workload_instance_accepted(self):
        from repro.workloads import get_workload

        w = get_workload("EP", num_threads=12, seed=3)
        r = run_benchmark(w, platform=SMALL)
        assert r.benchmark == "EP"

    def test_runtime_components_positive(self):
        r = run_benchmark("FT", platform=SMALL)
        assert r.compute_ns > 0
        assert r.memory_ns > 0
        assert r.runtime_ns >= r.compute_ns + r.memory_ns

    def test_uncoalesced_has_no_pipeline_overhead(self):
        r = run_benchmark("FT", platform=SMALL.with_coalescer(UNCOALESCED_CONFIG))
        assert r.coalescer_overhead_ns == 0.0

    def test_intensity_comes_from_workload(self):
        r = run_benchmark("LU", platform=SMALL)
        assert r.compute_cycles_per_access == 26.0

    def test_intensity_override(self):
        from dataclasses import replace

        plat = replace(SMALL, compute_cycles_per_access=3.0)
        r = run_benchmark("LU", platform=plat)
        assert r.compute_cycles_per_access == 3.0

    def test_request_size_distribution(self):
        r = run_benchmark("STREAM", platform=SMALL)
        dist = r.request_size_distribution()
        assert set(dist) <= {64, 128, 256}
        assert sum(dist.values()) == r.hmc.requests
        assert 256 in dist  # the coalescer does build max packets


class TestPhaseOrdering:
    """The paper's headline ordering must hold end to end."""

    def test_two_phase_beats_each_single_phase_on_stream(self):
        full = run_benchmark("STREAM", platform=SMALL).coalescing_efficiency
        dmc = run_benchmark(
            "STREAM", platform=SMALL.with_coalescer(DMC_ONLY_CONFIG)
        ).coalescing_efficiency
        mshr = run_benchmark(
            "STREAM", platform=SMALL.with_coalescer(MSHR_ONLY_CONFIG)
        ).coalescing_efficiency
        assert full >= dmc >= mshr
        assert full > 0.4

    def test_uncoalesced_efficiency_is_zero(self):
        r = run_benchmark("STREAM", platform=SMALL.with_coalescer(UNCOALESCED_CONFIG))
        assert r.coalescing_efficiency == 0.0

    def test_coalescing_reduces_transferred_bytes(self):
        base, coal = run_baseline_and_coalesced("STREAM", platform=SMALL)
        assert coal.transferred_bytes < base.transferred_bytes
        assert coal.control_bytes < base.control_bytes

    def test_bandwidth_efficiency_improves(self):
        base, coal = run_baseline_and_coalesced("FT", platform=SMALL)
        assert coal.bandwidth_efficiency > base.bandwidth_efficiency

    def test_runtime_improves_on_coalescable_workload(self):
        base, coal = run_baseline_and_coalesced("FT", platform=SMALL)
        assert runtime_improvement(base, coal) > 0.1

    def test_ep_improvement_negligible(self):
        """EP is compute-bound with an uncoalescable footprint."""
        base, coal = run_baseline_and_coalesced("EP", platform=SMALL)
        assert abs(runtime_improvement(base, coal)) < 0.05


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_benchmark("SG", platform=SMALL)
        b = run_benchmark("SG", platform=SMALL)
        assert a.hmc.requests == b.hmc.requests
        assert a.coalescer.llc_requests == b.coalescer.llc_requests
        assert a.hmc.transferred_bytes == b.hmc.transferred_bytes


class TestSeedRobustness:
    """Reproduction results must not hinge on one lucky seed."""

    @pytest.mark.parametrize("name", ["STREAM", "SG"])
    def test_coalescing_efficiency_stable_across_seeds(self, name):
        from dataclasses import replace

        effs = []
        for seed in (0, 7, 99):
            plat = replace(SMALL, seed=seed)
            effs.append(run_benchmark(name, platform=plat).coalescing_efficiency)
        spread = max(effs) - min(effs)
        assert spread < 0.12, effs

    def test_improvement_direction_stable_across_seeds(self):
        from dataclasses import replace

        for seed in (1, 42):
            plat = replace(SMALL, seed=seed)
            base, coal = run_baseline_and_coalesced("FT", platform=plat)
            assert runtime_improvement(base, coal) > 0.05
