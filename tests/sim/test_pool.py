"""Tests for the persistent worker pool executor (repro.sim.pool)."""

import logging
import multiprocessing
import os

import pytest

from repro.core.config import CoalescerConfig, UNCOALESCED_CONFIG
from repro.sim import pool as pool_mod
from repro.sim import shard
from repro.sim.driver import PlatformConfig
from repro.sim.pool import _mp_context, group_key_of, warn_spawn_once
from repro.sim.sweep import EXECUTORS, SweepSpec, clamp_jobs, run_sweep

SMALL = PlatformConfig(accesses=1_500)

GRID = SweepSpec(
    platform=SMALL,
    benchmarks=("STREAM", "SG"),
    configs={"uncoalesced": UNCOALESCED_CONFIG, "combined": CoalescerConfig()},
)

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="crash injection rides on fork inheritance"
)


class TestExecutorSelection:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_sweep(GRID, executor="bogus")
        assert "pool" in EXECUTORS and "fork" in EXECUTORS

    def test_inline_cannot_enforce_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            run_sweep(GRID, executor="inline", timeout=5.0)

    def test_auto_resolution_recorded_in_metadata(self):
        inline = run_sweep(GRID, jobs=1)
        assert inline.metadata["executor"] == "inline"
        assert inline.metadata["requested_jobs"] == 1
        assert inline.metadata["effective_jobs"] == 1
        assert inline.metadata["start_method"] is None

        pooled = run_sweep(GRID, jobs=2)
        assert pooled.metadata["executor"] == "pool"
        assert pooled.metadata["requested_jobs"] == 2
        assert pooled.metadata["start_method"] in (
            "fork",
            "spawn",
            "forkserver",
        )

    def test_timeout_forces_pool_even_single_job(self):
        sweep = run_sweep(GRID, jobs=1, timeout=300.0)
        assert sweep.metadata["executor"] == "pool"
        assert sweep.ok

    def test_effective_jobs_clamped_to_cpus(self, monkeypatch):
        monkeypatch.setattr("repro.sim.sweep.os.cpu_count", lambda: 2)
        sweep = run_sweep(GRID, jobs=64, executor="pool")
        assert sweep.metadata["requested_jobs"] == 64
        assert sweep.metadata["effective_jobs"] == 2
        assert sweep.ok


class TestClampJobs:
    def test_clamps_above_cpu_count(self, monkeypatch, caplog):
        monkeypatch.setattr("repro.sim.sweep.os.cpu_count", lambda: 2)
        monkeypatch.setattr("repro.sim.sweep._CLAMP_WARNED", False)
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            assert clamp_jobs(8) == 2
        assert any("clamping" in r.message for r in caplog.records)

    def test_passes_through_at_or_below(self, monkeypatch):
        monkeypatch.setattr("repro.sim.sweep.os.cpu_count", lambda: 4)
        assert clamp_jobs(1) == 1
        assert clamp_jobs(4) == 4

    def test_warns_once_then_debug(self, monkeypatch, caplog):
        monkeypatch.setattr("repro.sim.sweep.os.cpu_count", lambda: 1)
        monkeypatch.setattr("repro.sim.sweep._CLAMP_WARNED", False)
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            clamp_jobs(3)
            clamp_jobs(3)
        warnings = [
            r for r in caplog.records if r.levelno == logging.WARNING
        ]
        assert len(warnings) == 1


class TestPoolParity:
    def test_checkpoints_byte_identical_jobs_1_vs_4(self, tmp_path):
        one = tmp_path / "j1"
        four = tmp_path / "j4"
        run_sweep(GRID, jobs=1, executor="pool", out_dir=one)
        run_sweep(GRID, jobs=4, executor="pool", out_dir=four)
        names = sorted(p.name for p in one.iterdir())
        assert names == sorted(p.name for p in four.iterdir())
        assert names  # the grid actually ran
        for name in names:
            assert (one / name).read_bytes() == (four / name).read_bytes()

    def test_pool_matches_fork_checkpoints(self, tmp_path):
        pooled = tmp_path / "pool"
        forked = tmp_path / "fork"
        run_sweep(GRID, jobs=2, executor="pool", out_dir=pooled)
        run_sweep(GRID, jobs=2, executor="fork", out_dir=forked)
        for p in sorted(pooled.iterdir()):
            assert p.read_bytes() == (forked / p.name).read_bytes()

    def test_registry_and_order_jobs_invariant(self):
        one = run_sweep(GRID, jobs=1, executor="pool")
        four = run_sweep(GRID, jobs=4, executor="pool")
        assert list(one.results) == list(four.results)
        assert one.registry.as_flat_dict() == four.registry.as_flat_dict()


class TestGroupedScheduling:
    def test_same_trace_key_same_group(self):
        [(k1, p1), (k2, p2)] = [
            (k, p)
            for k, p in GRID.expand()
            if k.benchmark == "STREAM"
        ]

        class Item:
            def __init__(self, key, platform):
                self.key = key
                self.platform = platform

        assert group_key_of(Item(k1, p1)) == group_key_of(Item(k2, p2))

    def test_unknown_benchmark_groups_under_sentinel(self):
        class Key:
            benchmark = "NOPE"

        class Item:
            key = Key()
            platform = SMALL

        assert group_key_of(Item()).startswith("!ungrouped:")


@needs_fork
class TestWorkerCrash:
    def _crashing_execute_run(self, flag, crash_benchmark):
        real = shard.execute_run

        def execute_run(payload, checkpoint_path, trace_store=None):
            if payload["benchmark"] == crash_benchmark and not flag.exists():
                flag.write_text("crashed")
                os._exit(2)
            return real(payload, checkpoint_path, trace_store=trace_store)

        return execute_run

    def test_crash_mid_run_retries_on_fresh_worker(
        self, tmp_path, monkeypatch
    ):
        flag = tmp_path / "crashed-once"
        monkeypatch.setattr(
            shard,
            "execute_run",
            self._crashing_execute_run(flag, "SG"),
        )
        sweep = run_sweep(GRID, jobs=2, executor="pool", retries=1)
        assert flag.exists()  # the crash really happened
        assert sweep.ok
        assert len(sweep.results) == 4
        assert sweep.get("SG", "combined").coalescer.llc_requests > 0

    def test_crash_without_retries_is_failed_run(self, tmp_path, monkeypatch):
        flag = tmp_path / "crashed-a"
        monkeypatch.setattr(
            shard,
            "execute_run",
            self._crashing_execute_run(flag, "SG"),
        )
        sweep = run_sweep(
            SweepSpec(
                platform=SMALL,
                benchmarks=("SG",),
                configs={"combined": CoalescerConfig()},
            ),
            jobs=2,
            executor="pool",
            retries=0,
        )
        assert not sweep.ok
        [failure] = sweep.failures
        assert "worker crashed" in failure.error
        assert failure.attempts == 1


class TestSpawnFallback:
    def test_context_prefers_fork(self):
        ctx = _mp_context()
        if fork_available:
            assert ctx.get_start_method() == "fork"

    def test_spawn_warns_once(self, monkeypatch, caplog):
        class FakeCtx:
            @staticmethod
            def get_start_method():
                return "spawn"

        monkeypatch.setattr(pool_mod, "_SPAWN_WARNED", False)
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            warn_spawn_once(FakeCtx())
            warn_spawn_once(FakeCtx())
        warnings = [
            r for r in caplog.records if "re-imports repro" in r.message
        ]
        assert len(warnings) == 1

    def test_fork_never_warns(self, monkeypatch, caplog):
        class FakeCtx:
            @staticmethod
            def get_start_method():
                return "fork"

        monkeypatch.setattr(pool_mod, "_SPAWN_WARNED", False)
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            warn_spawn_once(FakeCtx())
        assert not caplog.records
