"""Tests for the discrete-event replay engine, including the
cross-validation against the trace-driven device model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmc.timing import HMCTimingConfig
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.sim.events import EventDrivenHMC, ReplayRequest, replay_issued_requests


def reqs_seq(n, *, block_stride=1, ready_gap=1.0, size=64):
    return [
        ReplayRequest(
            addr=i * 256 * block_stride,
            data_bytes=size,
            is_write=False,
            ready_ns=i * ready_gap,
        )
        for i in range(n)
    ]


class TestEngineBasics:
    def test_empty(self):
        r = EventDrivenHMC().replay([])
        assert r.makespan_ns == 0.0
        assert r.mean_latency_ns == 0.0

    def test_single_request_latency(self):
        cfg = HMCTimingConfig()
        r = EventDrivenHMC(cfg).replay(reqs_seq(1))
        assert r.makespan_ns == pytest.approx(
            cfg.link_transfer_ns(1)
            + cfg.t_serdes_ns
            + cfg.row_miss_ns()
            + cfg.vault_transfer_ns(64),
            rel=1e-6,
        )

    def test_completions_monotone_per_vault(self):
        r = EventDrivenHMC().replay(reqs_seq(64))
        assert all(c > 0 for c in r.completions_ns)
        assert r.makespan_ns == max(r.completions_ns)

    def test_outstanding_window_respected(self):
        engine = EventDrivenHMC(max_outstanding=4)
        r = engine.replay(reqs_seq(100, ready_gap=0.0))
        assert r.max_outstanding_seen <= 4

    def test_wider_window_is_never_slower(self):
        narrow = EventDrivenHMC(max_outstanding=2).replay(reqs_seq(100, ready_gap=0.0))
        wide = EventDrivenHMC(max_outstanding=32).replay(reqs_seq(100, ready_gap=0.0))
        assert wide.makespan_ns <= narrow.makespan_ns

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            EventDrivenHMC(max_outstanding=0)

    def test_vault_parallelism(self):
        """Requests spread over vaults finish sooner than the same
        requests hammering one vault."""
        spread = EventDrivenHMC().replay(reqs_seq(64, ready_gap=0.0))
        same_vault = EventDrivenHMC().replay(
            [
                ReplayRequest(addr=0, data_bytes=64, is_write=False, ready_ns=0.0)
                for _ in range(64)
            ]
        )
        assert spread.makespan_ns < same_vault.makespan_ns

    def test_closed_page_counts_no_hits(self):
        cfg = HMCTimingConfig(page_policy="closed")
        r = EventDrivenHMC(cfg).replay(reqs_seq(32))
        assert r.row_hits == 0
        assert r.row_misses == 32

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1 << 16),
                st.sampled_from([16, 64, 128, 256]),
                st.booleans(),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_latency_positive_and_ready_respected(self, specs):
        requests = [
            ReplayRequest(
                addr=block * 256,
                data_bytes=size,
                is_write=w,
                ready_ns=float(i),
            )
            for i, (block, size, w) in enumerate(specs)
        ]
        r = EventDrivenHMC().replay(requests)
        for req, done, lat in zip(requests, r.completions_ns, r.latencies_ns):
            assert done > req.ready_ns
            assert lat > 0


class TestCrossValidation:
    """The fast trace-driven path and the event-driven replay must
    agree on everything that does not depend on queueing detail."""

    @pytest.mark.parametrize("name", ["STREAM", "SG"])
    def test_replay_agrees_on_counts_and_bounds(self, name):
        plat = PlatformConfig(accesses=5_000)
        sim = run_benchmark(name, platform=plat)
        replay = replay_issued_requests(sim)

        assert len(replay.completions_ns) == sim.hmc.requests
        # The finite outstanding window can only slow things down
        # relative to the driver's free-running vault model.
        assert replay.makespan_ns >= 0.5 * sim.memory_ns
        assert replay.max_outstanding_seen <= plat.coalescer.num_mshrs
        assert sum(replay.vault_busy_ns) > 0

    def test_coalescing_helps_under_event_model_too(self):
        """The headline claim survives the stricter timing model."""
        from repro.core.config import UNCOALESCED_CONFIG

        plat = PlatformConfig(accesses=5_000)
        coal = replay_issued_requests(run_benchmark("STREAM", platform=plat))
        base = replay_issued_requests(
            run_benchmark("STREAM", platform=plat.with_coalescer(UNCOALESCED_CONFIG))
        )
        assert coal.makespan_ns < base.makespan_ns
        assert len(coal.completions_ns) < len(base.completions_ns)


class TestFRFCFS:
    """FR-FCFS vault scheduling (first-ready, first-come-first-served)."""

    def _conflict_stream(self, n=60, rows=2):
        import random

        rng = random.Random(3)
        stride = 256 * 32 * 16 * 64  # next row region, same vault/bank
        return [
            ReplayRequest(
                addr=rng.randrange(rows) * stride + (i % 4) * 64,
                data_bytes=64,
                is_write=False,
                ready_ns=0.0,
            )
            for i in range(n)
        ]

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            EventDrivenHMC(scheduler="random")

    def test_frfcfs_finds_more_row_hits(self):
        reqs = self._conflict_stream()
        fifo = EventDrivenHMC(scheduler="fifo").replay(list(reqs))
        fr = EventDrivenHMC(scheduler="frfcfs").replay(list(reqs))
        assert fr.row_hits > fifo.row_hits
        assert fr.makespan_ns < fifo.makespan_ns

    def test_frfcfs_conserves_requests(self):
        reqs = self._conflict_stream(n=40)
        fr = EventDrivenHMC(scheduler="frfcfs").replay(reqs)
        assert len(fr.completions_ns) == 40
        assert all(c > 0 for c in fr.completions_ns)

    def test_frfcfs_no_gain_on_sorted_stream(self):
        """On an already row-sorted stream, FR-FCFS finds nothing to
        reorder: both schedulers see the same row hits."""
        reqs = reqs_seq(40, ready_gap=0.0)
        fifo = EventDrivenHMC(scheduler="fifo").replay(list(reqs))
        fr = EventDrivenHMC(scheduler="frfcfs").replay(list(reqs))
        assert fr.row_hits == fifo.row_hits

    def test_frfcfs_cannot_replace_coalescing(self):
        """The paper's point survives a smarter controller: FR-FCFS
        reduces bank conflicts, but only coalescing removes the
        per-request control overhead and request count."""
        from repro.core.config import UNCOALESCED_CONFIG

        plat = PlatformConfig(accesses=4_000)
        base_sim = run_benchmark("STREAM", platform=plat.with_coalescer(UNCOALESCED_CONFIG))
        coal_sim = run_benchmark("STREAM", platform=plat)
        base_fr = replay_issued_requests(base_sim, scheduler="frfcfs")
        coal_fifo = replay_issued_requests(coal_sim)
        # Even with FR-FCFS, the uncoalesced system cannot catch the
        # coalesced one (it still moves far more control FLITs).
        assert coal_fifo.makespan_ns < base_fr.makespan_ns
