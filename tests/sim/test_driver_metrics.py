"""Driver-level observability tests.

The components dual-write every event into their legacy ``*Stats``
dataclasses and into the shared metrics registry, at independent call
sites.  These tests run one real benchmark and assert the two
accountings agree, which catches an instrumentation site drifting from
the stats it mirrors.
"""

import json

import pytest

from repro.obs import MetricsRegistry, PhaseProfiler
from repro.obs.export import registry_from_json_lines, registry_to_json_lines
from repro.sim.driver import PlatformConfig, run_benchmark

SMALL = PlatformConfig(accesses=6_000)


@pytest.fixture(scope="module")
def result():
    return run_benchmark("HPCG", platform=SMALL)


@pytest.fixture(scope="module")
def reg(result) -> MetricsRegistry:
    assert result.metrics is not None
    return result.metrics


class TestRegistryAgreesWithLegacyStats:
    def test_tracer(self, result, reg):
        t = result.tracer
        assert reg.counter("tracer_cpu_accesses_total").total() == t.cpu_accesses
        assert reg.counter("tracer_llc_requests_total").total() == t.llc_requests
        assert (
            reg.counter("tracer_requested_bytes_total").total()
            == t.requested_bytes
        )

    def test_sorter(self, result, reg):
        p = result.coalescer.pipeline
        seq = reg.counter("sorter_sequences_total")
        assert seq.total() == p.sequences
        assert seq.value(reason="full") == p.flushes_full
        assert seq.value(reason="timeout") == p.flushes_timeout
        assert seq.value(reason="fence") == p.flushes_fence
        assert seq.value(reason="drain") == p.flushes_drain
        assert reg.counter("sorter_requests_total").total() == p.requests_sorted
        assert reg.counter("sorter_padding_slots_total").total() == p.padding_slots
        assert reg.counter("sorter_comparator_ops_total").total() == p.comparator_ops
        assert reg.counter("sorter_fence_slots_total").total() == p.fence_slots
        assert (
            reg.counter("sorter_stages_skipped_total").total() == p.stages_skipped
        )
        assert (
            reg.get("sorter_sort_latency_cycles").total()
            == p.total_sort_latency_cycles
        )
        assert (
            reg.get("sorter_wait_cycles").total() == p.total_wait_latency_cycles
        )
        assert reg.get("sorter_occupancy").count() == p.sequences

    def test_dmc(self, result, reg):
        d = result.coalescer.dmc
        assert reg.counter("dmc_sequences_total").total() == d.sequences
        assert reg.counter("dmc_requests_in_total").total() == d.requests_in
        assert reg.counter("dmc_packets_out_total").total() == d.packets_out
        assert reg.counter("dmc_comparisons_total").total() == d.comparisons
        assert reg.counter("dmc_merges_total").total() == d.merges
        assert (
            reg.counter("dmc_latency_cycles_total").total()
            == d.total_latency_cycles
        )
        lines_hist = reg.get("dmc_packet_lines")
        for lines, count in d.packets_by_lines.items():
            idx = lines_hist.buckets.index(float(lines))
            assert lines_hist.bucket_counts()[idx] == count

    def test_crq(self, result, reg):
        c = result.coalescer.crq
        assert reg.counter("crq_pushes_total").total() == c.pushes
        assert reg.counter("crq_pops_total").total() == c.pops
        assert reg.counter("crq_fills_total").total() == c.fills
        assert reg.get("crq_fill_cycles").total() == c.total_fill_cycles
        assert reg.gauge("crq_max_occupancy").value() == c.max_occupancy
        assert reg.get("crq_depth").count() == c.pushes

    def test_mshr(self, result, reg):
        m = result.coalescer.mshr
        outcomes = reg.counter("mshr_outcomes_total")
        assert reg.counter("mshr_offers_total").total() == m.offered
        assert outcomes.value(case="allocated") == m.allocated
        assert outcomes.value(case="merged_full") == m.merged_full
        assert outcomes.value(case="merged_partial") == m.merged_partial
        assert outcomes.value(case="rejected_full") == m.rejected_full
        assert reg.counter("mshr_subentries_total").total() == m.subentries_added
        assert (
            reg.counter("mshr_remainder_packets_total").total()
            == m.remainder_packets
        )
        assert reg.counter("mshr_completions_total").total() == m.completions

    def test_coalescer_front_end(self, result, reg):
        s = result.coalescer
        assert (
            reg.counter("coalescer_llc_requests_total").total() == s.llc_requests
        )
        assert reg.counter("coalescer_bypass_total").total() == s.bypassed_requests
        assert (
            reg.counter("coalescer_hmc_requests_total").total() == s.hmc_requests
        )

    def test_hmc_device(self, result, reg):
        h = result.hmc
        requests = reg.counter("hmc_requests_total")
        assert requests.total() == h.requests
        assert requests.value(op="read") == h.reads
        assert requests.value(op="write") == h.writes
        assert reg.counter("hmc_payload_bytes_total").total() == h.payload_bytes
        assert (
            reg.counter("hmc_requested_bytes_total").total() == h.requested_bytes
        )
        assert reg.counter("hmc_control_bytes_total").total() == h.control_bytes
        rows = reg.counter("hmc_row_accesses_total")
        assert rows.value(outcome="hit") == h.row_hits
        assert rows.value(outcome="miss") == h.row_misses
        assert reg.get("hmc_packet_bytes").count() == h.requests

    def test_hmc_packet_size_histogram_matches(self, result, reg):
        hist = reg.get("hmc_packet_bytes")
        for size, count in result.hmc.size_histogram.items():
            idx = hist.buckets.index(float(size))
            assert hist.bucket_counts()[idx] == count

    def test_vaults_and_link(self, result, reg):
        # The per-vault series must sum to the device totals.
        assert (
            reg.counter("vault_requests_total").total() == result.hmc.requests
        )
        assert (
            reg.counter("vault_bank_conflicts_total").total()
            == result.hmc.row_misses
        )
        assert (
            reg.counter("link_transactions_total").total() == result.hmc.requests
        )
        link_bytes = reg.counter("link_bytes_total")
        assert link_bytes.value(kind="payload") == result.hmc.payload_bytes

    def test_derived_gauges_published(self, result, reg):
        assert reg.gauge("sim_coalescing_efficiency").value() == pytest.approx(
            result.coalescing_efficiency
        )
        assert reg.gauge("sim_bandwidth_efficiency").value() == pytest.approx(
            result.bandwidth_efficiency
        )
        assert reg.gauge("sim_runtime_ns").value() == pytest.approx(
            result.runtime_ns
        )
        assert reg.gauge("sim_trace_cycles").value() == result.trace_cycles

    def test_conservation_across_stages(self, result, reg):
        # Every request entering the coalescer leaves as a bypass or a
        # sorted request; every HMC packet came from the coalescer.
        assert (
            reg.counter("coalescer_llc_requests_total").total()
            == reg.counter("coalescer_bypass_total").total()
            + reg.counter("sorter_requests_total").total()
        )
        assert (
            reg.counter("coalescer_hmc_requests_total").total()
            == reg.counter("hmc_requests_total").total()
        )


class TestTimelineAndExport:
    def test_timeline_has_sorter_events(self, reg):
        launches = list(reg.timeline.iter_events(stage="sorter"))
        assert launches
        cycles = [e.cycle for e in launches]
        assert cycles == sorted(cycles)

    def test_full_run_round_trips_through_json(self, reg):
        lines = list(registry_to_json_lines(reg))
        assert all(json.loads(l) for l in lines)
        rebuilt = registry_from_json_lines(lines)
        assert rebuilt.as_flat_dict() == reg.as_flat_dict()


class TestProfiler:
    def test_run_benchmark_with_profiler(self):
        # The object engine charges phases per event, so call counts
        # line up with simulated quantities.
        profiler = PhaseProfiler()
        result = run_benchmark(
            "STREAM",
            platform=PlatformConfig(accesses=2_000),
            profiler=profiler,
            engine="object",
        )
        # Workloads round the access budget down to whole chunks.
        assert 0 < result.tracer.cpu_accesses <= 2_000
        assert set(profiler.phases()) == {"trace", "coalesce", "flush"}
        assert profiler.calls("coalesce") == result.coalescer.llc_requests
        assert profiler.total() > 0

    def test_run_benchmark_with_profiler_vector_engine(self):
        # The vector engine charges the same phases at bulk grain: the
        # names and totals survive, per-event call counts do not.
        profiler = PhaseProfiler()
        result = run_benchmark(
            "STREAM",
            platform=PlatformConfig(accesses=2_000),
            profiler=profiler,
            engine="vector",
        )
        assert 0 < result.tracer.cpu_accesses <= 2_000
        assert set(profiler.phases()) == {"trace", "coalesce", "flush"}
        assert profiler.total() > 0


class TestDerivedComparisons:
    def test_saved_bytes_methods(self):
        from repro.core.config import UNCOALESCED_CONFIG
        from repro.hmc.packet import REQUEST_CONTROL_BYTES

        platform = PlatformConfig(accesses=4_000)
        coal = run_benchmark("STREAM", platform=platform)
        base = run_benchmark(
            "STREAM", platform=platform.with_coalescer(UNCOALESCED_CONFIG)
        )
        saved_requests = coal.requests_saved_vs(base)
        assert saved_requests == base.hmc.requests - coal.hmc.requests
        assert saved_requests > 0
        assert (
            coal.control_bytes_saved_vs(base)
            == saved_requests * REQUEST_CONTROL_BYTES
        )
        assert coal.transfer_bytes_saved_vs(base) == (
            base.transferred_bytes - coal.transferred_bytes
        )
        assert coal.runtime_improvement_over(base) == pytest.approx(
            (base.runtime_ns - coal.runtime_ns) / base.runtime_ns
        )
