"""Tests for the parallel sweep engine (repro.sim.sweep / shard)."""

from pathlib import Path

import pytest

from repro.core.config import CoalescerConfig, UNCOALESCED_CONFIG
from repro.obs import MetricsRegistry
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.sim.shard import (
    CHECKPOINT_SUFFIX,
    platform_from_dict,
    platform_to_dict,
    read_checkpoint,
    result_from_dict,
    result_to_dict,
    write_checkpoint,
)
from repro.sim.sweep import (
    FIGURE_CONFIGS,
    RunKey,
    SweepSpec,
    config_digest,
    run_sweep,
)

#: Tiny platform so the whole module stays fast.
SMALL = PlatformConfig(accesses=1_500)

#: A 2x2 grid: two benchmarks, two configs.
GRID = SweepSpec(
    platform=SMALL,
    benchmarks=("STREAM", "SG"),
    configs={"uncoalesced": UNCOALESCED_CONFIG, "combined": CoalescerConfig()},
)


@pytest.fixture(scope="module")
def stream_result():
    return run_benchmark("STREAM", platform=SMALL)


class TestSerialization:
    def test_platform_round_trip(self):
        original = PlatformConfig(
            accesses=2_000, seed=3, coalescer=CoalescerConfig(timeout_cycles=8)
        )
        assert platform_from_dict(platform_to_dict(original)) == original

    def test_result_round_trip_scalars(self, stream_result):
        back = result_from_dict(result_to_dict(stream_result))
        assert back.benchmark == stream_result.benchmark
        assert back.platform == stream_result.platform
        assert back.coalescing_efficiency == stream_result.coalescing_efficiency
        assert back.bandwidth_efficiency == stream_result.bandwidth_efficiency
        assert back.runtime_ns == stream_result.runtime_ns
        assert back.hmc.size_histogram == stream_result.hmc.size_histogram
        assert (
            back.coalescer.dmc.packets_by_lines
            == stream_result.coalescer.dmc.packets_by_lines
        )

    def test_checkpoint_round_trip_includes_registry(
        self, stream_result, tmp_path
    ):
        path = tmp_path / f"run{CHECKPOINT_SUFFIX}"
        header = {"benchmark": "STREAM", "config": "combined", "digest": "x" * 40}
        write_checkpoint(path, header, stream_result)
        loaded_header, loaded = read_checkpoint(path)
        assert loaded_header["benchmark"] == "STREAM"
        assert loaded.metrics is not None
        assert (
            loaded.metrics.as_flat_dict()
            == stream_result.metrics.as_flat_dict()
        )

    def test_truncated_checkpoint_rejected(self, tmp_path):
        path = tmp_path / f"bad{CHECKPOINT_SUFFIX}"
        path.write_text('{"kind": "sweep-run", "version": 1}\n')
        with pytest.raises(ValueError):
            read_checkpoint(path)


class TestSpec:
    def test_expand_is_deterministic_and_ordered(self):
        keys = [key for key, _ in GRID.expand()]
        assert keys == [key for key, _ in GRID.expand()]
        assert [k.label for k in keys] == [
            "STREAM/uncoalesced",
            "STREAM/combined",
            "SG/uncoalesced",
            "SG/combined",
        ]

    def test_filter_scopes_keys(self):
        keys = [key for key, _ in GRID.expand(filter="SG/")]
        assert [k.benchmark for k in keys] == ["SG", "SG"]

    def test_structurally_equal_configs_share_digest(self):
        a = config_digest(SMALL.with_coalescer(CoalescerConfig()))
        b = config_digest(SMALL.with_coalescer(CoalescerConfig()))
        assert a == b
        c = config_digest(SMALL.with_coalescer(CoalescerConfig(timeout_cycles=8)))
        assert a != c

    def test_figure_grid_covers_all_benchmarks_and_configs(self):
        spec = SweepSpec.figure_grid(SMALL)
        keys = [key for key, _ in spec.expand()]
        assert len(keys) == 12 * len(FIGURE_CONFIGS)


class TestInlineSweep:
    def test_matches_direct_runs(self, tmp_path):
        sweep = run_sweep(GRID, jobs=1, out_dir=tmp_path)
        assert sweep.ok and sweep.completed == 4 and sweep.skipped == 0
        direct = run_benchmark(
            "STREAM", platform=SMALL.with_coalescer(CoalescerConfig())
        )
        got = sweep.get("STREAM", "combined")
        assert got.coalescing_efficiency == direct.coalescing_efficiency
        assert got.runtime_ns == direct.runtime_ns
        assert got.metrics.as_flat_dict() == direct.metrics.as_flat_dict()

    def test_writes_one_checkpoint_per_run(self, tmp_path):
        run_sweep(GRID, jobs=1, out_dir=tmp_path)
        assert len(list(tmp_path.glob(f"*{CHECKPOINT_SUFFIX}"))) == 4

    def test_merged_registry_equals_serial_merge(self, tmp_path):
        sweep = run_sweep(GRID, jobs=1, out_dir=tmp_path)
        serial = MetricsRegistry()
        for key, platform in GRID.expand():
            serial.merge(run_benchmark(key.benchmark, platform=platform).metrics)
        assert sweep.registry.as_flat_dict() == serial.as_flat_dict()


class TestResume:
    def test_preseeded_dir_skips_everything(self, tmp_path):
        run_sweep(GRID, jobs=1, out_dir=tmp_path)
        again = run_sweep(GRID, jobs=1, out_dir=tmp_path, resume=True)
        assert again.completed == 0
        assert again.skipped == 4
        assert len(again.results) == 4

    def test_deleted_checkpoint_reruns_only_that_key(self, tmp_path):
        first = run_sweep(GRID, jobs=1, out_dir=tmp_path)
        victim = next(iter(first.results))
        (tmp_path / (victim.stem + CHECKPOINT_SUFFIX)).unlink()
        again = run_sweep(GRID, jobs=1, out_dir=tmp_path, resume=True)
        assert again.completed == 1
        assert again.skipped == 3
        assert list(again.results) == list(first.results)

    def test_corrupt_checkpoint_is_rerun(self, tmp_path):
        first = run_sweep(GRID, jobs=1, out_dir=tmp_path)
        victim = next(iter(first.results))
        (tmp_path / (victim.stem + CHECKPOINT_SUFFIX)).write_text("not json\n")
        again = run_sweep(GRID, jobs=1, out_dir=tmp_path, resume=True)
        assert again.completed == 1 and again.skipped == 3

    def test_without_resume_flag_everything_reruns(self, tmp_path):
        run_sweep(GRID, jobs=1, out_dir=tmp_path)
        again = run_sweep(GRID, jobs=1, out_dir=tmp_path)
        assert again.completed == 4 and again.skipped == 0


BROKEN = SweepSpec(
    platform=SMALL,
    benchmarks=("STREAM", "NOPE"),
    configs={"combined": CoalescerConfig()},
)


class TestFailures:
    def test_inline_exception_becomes_failed_run(self):
        sweep = run_sweep(BROKEN, jobs=1, retries=0)
        assert not sweep.ok
        [failure] = sweep.failures
        assert failure.key.label == "NOPE/combined"
        assert "UnknownBenchmark" in failure.error
        assert failure.attempts == 1
        # the healthy shard still completed
        assert sweep.get("STREAM", "combined").coalescer.llc_requests > 0

    def test_worker_exception_becomes_failed_run_with_traceback(self):
        sweep = run_sweep(BROKEN, jobs=2, retries=1)
        [failure] = sweep.failures
        assert failure.key.label == "NOPE/combined"
        assert "UnknownBenchmark" in failure.error
        assert "Traceback" in failure.traceback
        assert failure.attempts == 2
        assert len(sweep.results) == 1

    def test_timeout_terminates_stuck_worker(self):
        heavy = SweepSpec(
            platform=PlatformConfig(accesses=400_000),
            benchmarks=("STREAM",),
            configs={"combined": CoalescerConfig()},
        )
        sweep = run_sweep(heavy, jobs=1, timeout=0.2, retries=0)
        [failure] = sweep.failures
        assert "timed out" in failure.error


class TestParallelParity:
    def test_checkpoints_byte_identical_across_jobs(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_sweep(GRID, jobs=1, out_dir=serial_dir)
        run_sweep(GRID, jobs=2, out_dir=parallel_dir)
        names = sorted(p.name for p in serial_dir.iterdir())
        assert names == sorted(p.name for p in parallel_dir.iterdir())
        for name in names:
            assert (serial_dir / name).read_bytes() == (
                parallel_dir / name
            ).read_bytes()

    def test_result_order_and_registry_jobs_invariant(self):
        serial = run_sweep(GRID, jobs=1)
        parallel = run_sweep(GRID, jobs=2)
        assert list(serial.results) == list(parallel.results)
        assert (
            serial.registry.as_flat_dict() == parallel.registry.as_flat_dict()
        )


class TestSweepReport:
    def test_load_and_summarize_checkpoint_dir(self, tmp_path):
        from repro.analysis.sweep_report import (
            format_sweep_summary,
            load_sweep_dir,
            merged_sweep_registry,
        )

        sweep = run_sweep(GRID, jobs=1, out_dir=tmp_path)
        runs = load_sweep_dir(tmp_path)
        assert len(runs) == 4
        assert all(isinstance(key, RunKey) for key, _ in runs)
        table = format_sweep_summary(runs)
        assert "STREAM" in table and "combined" in table
        # Gauges are last-writer-wins and float sums depend on addition
        # order, so merge the loaded runs in the sweep's expansion order
        # and compare approximately.
        expansion = [key.label for key in sweep.results]
        ordered = sorted(runs, key=lambda kv: expansion.index(kv[0].label))
        merged = merged_sweep_registry(ordered)
        assert merged.as_flat_dict() == pytest.approx(
            sweep.registry.as_flat_dict()
        )
