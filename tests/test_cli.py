"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "STREAM"])
        args.accesses == 24_000
        assert args.benchmark == "STREAM"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("SG", "HPCG", "STREAM", "FT", "SparseLU"):
            assert name in out

    def test_run_small(self, capsys):
        assert main(["run", "STREAM", "--accesses", "3000"]) == 0
        out = capsys.readouterr().out
        assert "coalescing efficiency" in out
        assert "runtime improvement" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "vector_add"]) == 0
        out = capsys.readouterr().out
        assert "ld" in out and "sd" in out
        assert "ecall" in out

    def test_disasm_unknown_kernel(self, capsys):
        assert main(["disasm", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_trace_write_and_summary(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.trace")
        assert main(["trace", "SG", trace_file, "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "LLC requests" in out
        assert main(["trace", "--summary", "ignored", trace_file]) == 0
        out = capsys.readouterr().out
        assert "loads" in out and "stores" in out
