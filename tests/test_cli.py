"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "STREAM"])
        args.accesses == 24_000
        assert args.benchmark == "STREAM"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("SG", "HPCG", "STREAM", "FT", "SparseLU"):
            assert name in out

    def test_run_small(self, capsys):
        assert main(["run", "STREAM", "--accesses", "3000"]) == 0
        out = capsys.readouterr().out
        assert "coalescing efficiency" in out
        assert "runtime improvement" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "vector_add"]) == 0
        out = capsys.readouterr().out
        assert "ld" in out and "sd" in out
        assert "ecall" in out

    def test_disasm_unknown_kernel(self, capsys):
        assert main(["disasm", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_trace_write_and_summary(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.trace")
        assert main(["trace", "SG", trace_file, "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "LLC requests" in out
        assert main(["trace", "--summary", "ignored", trace_file]) == 0
        out = capsys.readouterr().out
        assert "loads" in out and "stores" in out

    def test_stats_table(self, capsys):
        assert main(["stats", "STREAM", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "STREAM metrics" in out
        for name in (
            "sorter_sequences_total",
            "dmc_merges_total",
            "crq_pushes_total",
            "mshr_offers_total",
            "vault_requests_total",
        ):
            assert name in out

    def test_stats_json_lines_are_valid(self, capsys):
        import json

        assert main(["stats", "STREAM", "--accesses", "2000", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        docs = [json.loads(line) for line in lines]
        names = {d["name"] for d in docs if "name" in d}
        # One doc per stage family, as the acceptance criterion requires.
        for required in (
            "sorter_sequences_total",
            "dmc_packet_lines",
            "crq_depth",
            "mshr_outcomes_total",
            "vault_requests_total",
            "hmc_requests_total",
        ):
            assert required in names
        assert any(d.get("kind") == "timeline" for d in docs)

    def test_stats_no_timeline(self, capsys):
        import json

        assert (
            main(
                ["stats", "STREAM", "--accesses", "2000", "--json", "--no-timeline"]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(l).get("kind") != "timeline" for l in lines)

    def test_stats_out_file_round_trips(self, tmp_path, capsys):
        from repro.obs.export import registry_from_json_lines

        out_file = tmp_path / "m.jsonl"
        assert (
            main(["stats", "STREAM", "--accesses", "2000", "--out", str(out_file)])
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        reg = registry_from_json_lines(out_file.read_text())
        assert reg.counter("tracer_cpu_accesses_total").total() > 0

    def test_profile(self, capsys):
        assert main(["profile", "STREAM", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "simulator profile" in out
        assert "trace" in out and "coalesce" in out
        assert "total" in out


class TestSweepCommand:
    ARGS = [
        "sweep",
        "--accesses",
        "1500",
        "--benchmarks",
        "STREAM,SG",
        "--configs",
        "uncoalesced,combined",
        "--quiet",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.accesses == 12_000
        assert not args.resume

    def test_sweep_writes_checkpoints(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 run, 0 resumed, 0 failed" in out
        assert len(list(out_dir.glob("*.jsonl"))) == 4

    def test_sweep_resume_skips_completed(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--out", str(out_dir), "--resume"]) == 0
        assert "0 run, 4 resumed, 0 failed" in capsys.readouterr().out

    def test_sweep_filter(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir), "--filter", "SG/"]) == 0
        assert "2 run" in capsys.readouterr().out

    def test_sweep_unknown_config_rejected(self, capsys):
        assert main(["sweep", "--configs", "bogus"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_sweep_summarize(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--summarize", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out and "uncoalesced" in out

    def test_sweep_summarize_empty_dir(self, tmp_path, capsys):
        assert main(["sweep", "--summarize", str(tmp_path)]) == 2
        assert "no checkpoints" in capsys.readouterr().err

    def test_figures_jobs_flag_parses(self):
        args = build_parser().parse_args(["figures", "--jobs", "3"])
        assert args.jobs == 3
