"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "STREAM"])
        args.accesses == 24_000
        assert args.benchmark == "STREAM"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("SG", "HPCG", "STREAM", "FT", "SparseLU"):
            assert name in out

    def test_run_small(self, capsys):
        assert main(["run", "STREAM", "--accesses", "3000"]) == 0
        out = capsys.readouterr().out
        assert "coalescing efficiency" in out
        assert "runtime improvement" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "vector_add"]) == 0
        out = capsys.readouterr().out
        assert "ld" in out and "sd" in out
        assert "ecall" in out

    def test_disasm_unknown_kernel(self, capsys):
        assert main(["disasm", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_trace_write_and_summary(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.trace")
        assert main(["trace", "SG", trace_file, "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "LLC requests" in out
        assert main(["trace", "--summary", "ignored", trace_file]) == 0
        out = capsys.readouterr().out
        assert "loads" in out and "stores" in out

    def test_stats_table(self, capsys):
        assert main(["stats", "STREAM", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "STREAM metrics" in out
        for name in (
            "sorter_sequences_total",
            "dmc_merges_total",
            "crq_pushes_total",
            "mshr_offers_total",
            "vault_requests_total",
        ):
            assert name in out

    def test_stats_json_lines_are_valid(self, capsys):
        import json

        assert main(["stats", "STREAM", "--accesses", "2000", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        docs = [json.loads(line) for line in lines]
        names = {d["name"] for d in docs if "name" in d}
        # One doc per stage family, as the acceptance criterion requires.
        for required in (
            "sorter_sequences_total",
            "dmc_packet_lines",
            "crq_depth",
            "mshr_outcomes_total",
            "vault_requests_total",
            "hmc_requests_total",
        ):
            assert required in names
        assert any(d.get("kind") == "timeline" for d in docs)

    def test_stats_no_timeline(self, capsys):
        import json

        assert (
            main(
                ["stats", "STREAM", "--accesses", "2000", "--json", "--no-timeline"]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(l).get("kind") != "timeline" for l in lines)

    def test_stats_out_file_round_trips(self, tmp_path, capsys):
        from repro.obs.export import registry_from_json_lines

        out_file = tmp_path / "m.jsonl"
        assert (
            main(["stats", "STREAM", "--accesses", "2000", "--out", str(out_file)])
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        reg = registry_from_json_lines(out_file.read_text())
        assert reg.counter("tracer_cpu_accesses_total").total() > 0

    def test_profile(self, capsys):
        assert main(["profile", "STREAM", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "simulator profile" in out
        assert "trace" in out and "coalesce" in out
        assert "total" in out


class TestSweepCommand:
    ARGS = [
        "sweep",
        "--accesses",
        "1500",
        "--benchmarks",
        "STREAM,SG",
        "--configs",
        "uncoalesced,combined",
        "--quiet",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.accesses == 12_000
        assert not args.resume

    def test_sweep_writes_checkpoints(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 run, 0 resumed, 0 failed" in out
        assert len(list(out_dir.glob("*.jsonl"))) == 4

    def test_sweep_resume_skips_completed(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--out", str(out_dir), "--resume"]) == 0
        assert "0 run, 4 resumed, 0 failed" in capsys.readouterr().out

    def test_sweep_filter(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir), "--filter", "SG/"]) == 0
        assert "2 run" in capsys.readouterr().out

    def test_sweep_unknown_config_rejected(self, capsys):
        assert main(["sweep", "--configs", "bogus"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_sweep_summarize(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.ARGS + ["--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--summarize", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out and "uncoalesced" in out

    def test_sweep_summarize_empty_dir(self, tmp_path, capsys):
        assert main(["sweep", "--summarize", str(tmp_path)]) == 2
        assert "no checkpoints" in capsys.readouterr().err

    def test_figures_jobs_flag_parses(self):
        args = build_parser().parse_args(["figures", "--jobs", "3"])
        assert args.jobs == 3


class TestTraceStoreCommands:
    """The ``repro trace ls/info/gc`` store-maintenance verbs."""

    def _populate(self, trace_dir):
        from repro.sim.driver import PlatformConfig, run_benchmark
        from repro.trace import TraceStore

        run_benchmark(
            "STREAM",
            platform=PlatformConfig(accesses=600),
            trace_store=TraceStore(trace_dir),
        )

    def test_ls_lists_captures(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["trace", "ls", "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out and ".rtrace" in out

    def test_ls_empty_dir(self, tmp_path, capsys):
        assert main(["trace", "ls", "--trace-dir", str(tmp_path)]) == 0
        assert "no traces" in capsys.readouterr().out

    def test_info_prints_key_payload(self, tmp_path, capsys):
        self._populate(tmp_path)
        name = next(tmp_path.glob("*.rtrace")).name
        assert main(["trace", "info", name, "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "key.benchmark" in out

    def test_info_missing_file(self, tmp_path, capsys):
        assert main(["trace", "info", "nope.rtrace", "--trace-dir", str(tmp_path)]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_info_requires_file_argument(self, capsys):
        assert main(["trace", "info"]) == 2
        assert "requires" in capsys.readouterr().err

    def test_gc_removes_corrupt_entries_only(self, tmp_path, capsys):
        self._populate(tmp_path)
        (tmp_path / "bad.rtrace").write_bytes(b"junk")
        assert main(["trace", "gc", "--trace-dir", str(tmp_path)]) == 0
        assert "bad.rtrace" in capsys.readouterr().out
        assert not (tmp_path / "bad.rtrace").exists()
        assert len(list(tmp_path.glob("*.rtrace"))) == 1

    def test_gc_all(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["trace", "gc", "--all", "--trace-dir", str(tmp_path)]) == 0
        assert not list(tmp_path.glob("*.rtrace"))

    def test_gc_requires_trace_dir(self, capsys):
        assert main(["trace", "gc"]) == 2
        assert "--trace-dir" in capsys.readouterr().err

    def test_capture_requires_file_argument(self, capsys):
        assert main(["trace", "STREAM"]) == 2
        assert "requires" in capsys.readouterr().err

    def test_sweep_trace_dir_populates_store(self, tmp_path, capsys):
        sweep_args = [
            "sweep", "--accesses", "900", "--benchmarks", "STREAM",
            "--configs", "uncoalesced,combined", "--quiet",
            "--trace-dir", str(tmp_path / "traces"),
        ]
        assert main(sweep_args) == 0
        # Both configs share one capture of the front end.
        assert len(list((tmp_path / "traces").glob("*.rtrace"))) == 1


class TestPerfUpdateBaseline:
    """The digest gate of ``perf --update-baseline``."""

    @staticmethod
    def _case(digest, wall=0.1):
        return {
            "benchmark": "STREAM",
            "config": "combined",
            "accesses": 600,
            "seed": 0,
            "kind": "sim",
            "digest": digest,
            "wall_seconds": wall,
            "requests_per_second": 1000.0,
            "normalized_throughput": 50.0,
        }

    def _report(self, digest, name="STREAM/combined@600"):
        return {
            "schema": 1,
            "suite": "test",
            "calibration_seconds": 0.05,
            "cases": {name: self._case(digest)},
        }

    def _args(self, path, force=False):
        import argparse

        return argparse.Namespace(baseline=str(path), force=force, threshold=0.25)

    def test_refuses_on_digest_change_without_force(self, tmp_path, capsys):
        from repro.__main__ import _update_baseline
        from repro.perf import save_report

        baseline = tmp_path / "baseline.json"
        save_report(self._report("aaa"), baseline)
        assert _update_baseline(self._report("bbb"), self._args(baseline)) == 1
        err = capsys.readouterr().err
        assert "refusing" in err and "--force" in err
        from repro.perf import load_report

        assert load_report(baseline)["cases"]["STREAM/combined@600"]["digest"] == "aaa"

    def test_force_overwrites_changed_digest(self, tmp_path, capsys):
        from repro.__main__ import _update_baseline
        from repro.perf import load_report, save_report

        baseline = tmp_path / "baseline.json"
        save_report(self._report("aaa"), baseline)
        assert _update_baseline(
            self._report("bbb"), self._args(baseline, force=True)
        ) == 0
        assert load_report(baseline)["cases"]["STREAM/combined@600"]["digest"] == "bbb"

    def test_merge_keeps_cases_not_rerun(self, tmp_path, capsys):
        from repro.__main__ import _update_baseline
        from repro.perf import load_report, save_report

        baseline = tmp_path / "baseline.json"
        save_report(self._report("aaa"), baseline)
        update = self._report("ccc", name="SG/combined@600")
        update["cases"]["SG/combined@600"]["benchmark"] = "SG"
        assert _update_baseline(update, self._args(baseline)) == 0
        cases = load_report(baseline)["cases"]
        assert set(cases) == {"STREAM/combined@600", "SG/combined@600"}

    def test_creates_baseline_when_absent(self, tmp_path, capsys):
        from repro.__main__ import _update_baseline
        from repro.perf import load_report

        baseline = tmp_path / "baseline.json"
        assert _update_baseline(self._report("aaa"), self._args(baseline)) == 0
        assert load_report(baseline)["cases"]
