"""TraceBuffer: columnar capture, binary roundtrip, format errors."""

import pytest

from repro.cache.tracer import TraceRecord
from repro.core.request import MemoryRequest, RequestType
from repro.trace.buffer import (
    TRACE_MAGIC,
    TraceBuffer,
    TraceError,
    TraceIntegrityError,
    TraceVersionError,
)


def _record(addr, rtype=RequestType.LOAD, cycle=0, **flags):
    if rtype is RequestType.FENCE:
        request = MemoryRequest(addr=0, rtype=RequestType.FENCE)
    else:
        request = MemoryRequest(
            addr=addr, rtype=rtype, size=64, requested_bytes=8
        )
    return TraceRecord(request=request, cycle=cycle, **flags)


def _sample_buffer():
    buf = TraceBuffer()
    buf.append_record(_record(0x1000, cycle=1))
    buf.append_record(_record(0x1040, RequestType.STORE, cycle=2))
    buf.append_record(_record(0x2000, cycle=3, is_writeback=True))
    buf.append_record(_record(0x3000, cycle=4, is_secondary=True))
    buf.append_record(_record(0, RequestType.FENCE, cycle=5))
    buf.append_record(_record(0x4000, cycle=6, is_prefetch=True))
    return buf.finalize(
        benchmark="SG",
        cpu_accesses=10,
        compute_cycles_per_access=2.0,
        secondary_misses=1,
        key_digest="abc123",
    )


class TestCaptureAccounting:
    def test_len_and_last_cycle(self):
        buf = _sample_buffer()
        assert len(buf) == 6
        assert buf.last_cycle == 6

    def test_meta_mirrors_tracer_accounting(self):
        meta = _sample_buffer().meta
        assert meta["llc_requests"] == 5  # the fence does not count
        assert meta["fences"] == 1
        assert meta["writebacks"] == 1
        assert meta["prefetches"] == 1
        assert meta["kinds"] == {
            "miss": 2,
            "secondary_miss": 1,
            "writeback": 1,
            "prefetch": 1,
        }

    def test_tracer_stats_view(self):
        stats = _sample_buffer().tracer_stats()
        assert stats.cpu_accesses == 10
        assert stats.llc_requests == 5
        assert stats.requested_bytes == 5 * 8


class TestRoundtrip:
    def test_bytes_roundtrip_preserves_rows(self):
        buf = _sample_buffer()
        clone = TraceBuffer.from_bytes(buf.to_bytes())
        assert list(clone.cycles) == list(buf.cycles)
        assert list(clone.addrs) == list(buf.addrs)
        assert list(clone.flags) == list(buf.flags)
        assert clone.meta == buf.meta

    def test_records_reconstruct_requests_and_flags(self):
        records = list(TraceBuffer.from_bytes(_sample_buffer().to_bytes()).records())
        assert records[0].request.addr == 0x1000
        assert records[0].request.rtype is RequestType.LOAD
        assert records[1].request.rtype is RequestType.STORE
        assert records[2].is_writeback
        assert records[3].is_secondary
        assert records[4].request.is_fence
        assert records[5].is_prefetch

    def test_save_load_roundtrip(self, tmp_path):
        buf = _sample_buffer()
        path = buf.save(tmp_path / "t.rtrace")
        assert TraceBuffer.load(path).digest() == buf.digest()

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        _sample_buffer().save(tmp_path / "t.rtrace")
        assert [p.name for p in tmp_path.iterdir()] == ["t.rtrace"]

    def test_digest_is_content_stable(self):
        assert _sample_buffer().digest() == _sample_buffer().digest()


class TestFormatErrors:
    def test_bad_magic(self):
        data = bytearray(_sample_buffer().to_bytes())
        data[:4] = b"XXXX"
        with pytest.raises(TraceError):
            TraceBuffer.from_bytes(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(TraceError):
            TraceBuffer.from_bytes(TRACE_MAGIC + b"\x00")

    def test_truncated_payload(self):
        data = _sample_buffer().to_bytes()
        with pytest.raises(TraceError):
            TraceBuffer.from_bytes(data[: len(data) // 2])

    def test_flipped_byte_fails_integrity(self):
        data = bytearray(_sample_buffer().to_bytes())
        data[-40] ^= 0xFF  # inside the column payloads
        with pytest.raises(TraceIntegrityError):
            TraceBuffer.from_bytes(bytes(data))

    def test_version_mismatch(self):
        import hashlib
        import struct

        data = bytearray(_sample_buffer().to_bytes())[:-32]
        struct.pack_into("<H", data, len(TRACE_MAGIC), 99)
        data += hashlib.sha256(bytes(data)).digest()  # keep integrity valid
        with pytest.raises(TraceVersionError):
            TraceBuffer.from_bytes(bytes(data))
