"""Differential test: replayed runs are bit-identical to live runs.

For each workload, run live, then capture-through-store, then replay
from the store (in a fresh store instance so the disk format is on the
path), and require all three :func:`result_digest` values to be equal.
The digest covers the full result serialization plus every metric
value, so equality here is the trace layer's bit-exactness contract.
"""

import pytest

from repro.perf.digest import result_digest
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.sim.sweep import FIGURE_CONFIGS
from repro.trace import TraceStore

#: Front-end-dominated, back-end-saturated and mid-range workloads.
WORKLOADS = ("SparseLU", "SG", "STREAM", "FT")


@pytest.mark.parametrize("bench", WORKLOADS)
@pytest.mark.parametrize("config", ("uncoalesced", "combined"))
def test_live_capture_replay_digests_match(tmp_path, bench, config):
    platform = PlatformConfig(accesses=900)
    coalescer = FIGURE_CONFIGS[config]

    live = run_benchmark(bench, platform=platform, coalescer=coalescer)

    capture_store = TraceStore(tmp_path)
    captured = run_benchmark(
        bench,
        platform=platform,
        coalescer=coalescer,
        trace_store=capture_store,
    )
    assert capture_store.misses == 1 and capture_store.hits == 0

    replay_store = TraceStore(tmp_path)  # fresh instance: disk tier path
    replayed = run_benchmark(
        bench,
        platform=platform,
        coalescer=coalescer,
        trace_store=replay_store,
    )
    assert replay_store.hits == 1

    assert (
        result_digest(live)
        == result_digest(captured)
        == result_digest(replayed)
    )


def test_one_capture_serves_every_coalescer_config(tmp_path):
    """The sweep contract: four configs, one trace file on disk."""
    platform = PlatformConfig(accesses=900)
    store = TraceStore(tmp_path)
    for cfg in FIGURE_CONFIGS.values():
        live = run_benchmark("STREAM", platform=platform, coalescer=cfg)
        shared = run_benchmark(
            "STREAM", platform=platform, coalescer=cfg, trace_store=store
        )
        assert result_digest(live) == result_digest(shared)
    assert store.misses == 1 and store.hits == len(FIGURE_CONFIGS) - 1
    assert len(list(store.entries())) == 1
