"""TraceStore: key contract, LRU/disk tiers, failure-mode fallback.

The failure-mode contract (ISSUE): a corrupt, truncated,
version-mismatched or key-mismatched disk entry must be logged and
treated as a miss -- the caller falls back to live capture whose
``put`` overwrites the bad file -- and must never crash a run or serve
stale rows.
"""

import hashlib
import struct

import pytest

from repro.sim.driver import PlatformConfig, run_benchmark
from repro.sim.sweep import FIGURE_CONFIGS
from repro.trace.buffer import TRACE_MAGIC, TraceBuffer
from repro.trace.store import TraceStore, canonical_benchmark, trace_key


def _platform(**kwargs):
    kwargs.setdefault("accesses", 600)
    return PlatformConfig(**kwargs)


def _key(benchmark="STREAM", **kwargs):
    return trace_key(benchmark, _platform(**kwargs))


def _capture(key, tmp_root=None, **platform_kwargs):
    """A tiny real capture filed under ``key`` in a fresh store."""
    store = TraceStore(tmp_root)
    run_benchmark(
        key.benchmark,
        platform=_platform(**platform_kwargs),
        coalescer=FIGURE_CONFIGS["combined"],
        trace_store=store,
    )
    return store


class TestKeyContract:
    def test_canonical_benchmark_is_case_insensitive(self):
        assert canonical_benchmark("stream") == canonical_benchmark("STREAM")
        with pytest.raises(KeyError):
            canonical_benchmark("nope")

    def test_front_end_inputs_change_the_key(self):
        base = _key()
        assert _key(seed=7).digest != base.digest
        assert _key(accesses=601).digest != base.digest

    def test_downstream_config_does_not_change_the_key(self):
        base = trace_key("STREAM", PlatformConfig(accesses=600))
        coalesced = trace_key(
            "STREAM",
            PlatformConfig(accesses=600).with_coalescer(
                FIGURE_CONFIGS["combined"]
            ),
        )
        assert base.digest == coalesced.digest

    def test_filename_carries_benchmark_and_digest(self):
        key = _key()
        assert key.filename.startswith("STREAM-")
        assert key.filename.endswith(".rtrace")


class TestTiers:
    def test_memory_only_store_hits_within_process(self):
        key = _key()
        store = _capture(key)
        assert store.get(key) is not None
        assert store.hits >= 1

    def test_disk_tier_survives_a_fresh_store(self, tmp_path):
        key = _key()
        _capture(key, tmp_path)
        fresh = TraceStore(tmp_path)
        buf = fresh.get(key)
        assert buf is not None and len(buf) > 0
        assert fresh.hits == 1

    def test_lru_evicts_oldest_memory_entry(self):
        store = TraceStore(max_memory_entries=2)
        keys = [_key(seed=s) for s in range(3)]
        for k in keys:
            store.put(k, TraceBuffer())
        assert store.get(keys[0]) is None  # evicted, no disk tier
        assert store.get(keys[2]) is not None


class TestFailureModes:
    """Every bad-entry flavour degrades to a logged live re-capture."""

    def _path(self, key, tmp_path):
        return tmp_path / key.filename

    def _assert_falls_back_and_overwrites(self, key, tmp_path, caplog):
        store = TraceStore(tmp_path)
        with caplog.at_level("WARNING", logger="repro.trace"):
            assert store.get(key) is None  # never raises, never stale
        assert store.misses == 1
        assert any("re-capturing live" in r.message for r in caplog.records)
        assert not self._path(key, tmp_path).exists()  # bad file removed
        # The live fallback's put overwrites it with a good entry.
        _capture(key, tmp_path)
        assert TraceStore(tmp_path).get(key) is not None

    def test_corrupt_garbage_file(self, tmp_path, caplog):
        key = _key()
        self._path(key, tmp_path).write_bytes(b"not a trace at all")
        self._assert_falls_back_and_overwrites(key, tmp_path, caplog)

    def test_truncated_file(self, tmp_path, caplog):
        key = _key()
        _capture(key, tmp_path)
        path = self._path(key, tmp_path)
        path.write_bytes(path.read_bytes()[:-100])
        self._assert_falls_back_and_overwrites(key, tmp_path, caplog)

    def test_version_mismatch(self, tmp_path, caplog):
        key = _key()
        _capture(key, tmp_path)
        path = self._path(key, tmp_path)
        data = bytearray(path.read_bytes())[:-32]
        struct.pack_into("<H", data, len(TRACE_MAGIC), 99)
        path.write_bytes(bytes(data) + hashlib.sha256(bytes(data)).digest())
        self._assert_falls_back_and_overwrites(key, tmp_path, caplog)

    def test_payload_digest_mismatch(self, tmp_path, caplog):
        key = _key()
        _capture(key, tmp_path)
        path = self._path(key, tmp_path)
        data = bytearray(path.read_bytes())
        data[-40] ^= 0xFF
        path.write_bytes(bytes(data))
        self._assert_falls_back_and_overwrites(key, tmp_path, caplog)

    def test_stale_key_digest_is_discarded(self, tmp_path, caplog):
        # A readable trace filed under this key's name but captured for
        # different inputs must not be served.
        key, other = _key(), _key(seed=99)
        _capture(other, tmp_path, seed=99)
        (tmp_path / other.filename).rename(tmp_path / key.filename)
        self._assert_falls_back_and_overwrites(key, tmp_path, caplog)

    def test_replay_after_corruption_is_bit_exact(self, tmp_path):
        # End to end: corrupting the store mid-sequence never changes
        # results, it only costs a re-capture.
        from repro.perf.digest import result_digest

        key = _key()
        platform = PlatformConfig(accesses=600)
        coalescer = FIGURE_CONFIGS["combined"]
        live = result_digest(
            run_benchmark("STREAM", platform=platform, coalescer=coalescer)
        )
        _capture(key, tmp_path)
        self._path(key, tmp_path).write_bytes(b"garbage")
        store = TraceStore(tmp_path)
        recaptured = result_digest(
            run_benchmark(
                "STREAM",
                platform=platform,
                coalescer=coalescer,
                trace_store=store,
            )
        )
        replayed = result_digest(
            run_benchmark(
                "STREAM",
                platform=platform,
                coalescer=coalescer,
                trace_store=TraceStore(tmp_path),
            )
        )
        assert live == recaptured == replayed


class TestMaintenance:
    def test_entries_reports_bad_files_as_none(self, tmp_path):
        key = _key()
        _capture(key, tmp_path)
        (tmp_path / "bad.rtrace").write_bytes(b"junk")
        got = {p.name: buf for p, buf in TraceStore(tmp_path).entries()}
        assert got["bad.rtrace"] is None
        assert got[key.filename] is not None

    def test_gc_removes_only_unreadable_entries(self, tmp_path):
        key = _key()
        _capture(key, tmp_path)
        (tmp_path / "bad.rtrace").write_bytes(b"junk")
        removed = TraceStore(tmp_path).gc()
        assert [p.name for p in removed] == ["bad.rtrace"]
        assert (tmp_path / key.filename).exists()

    def test_gc_drop_all(self, tmp_path):
        _capture(_key(), tmp_path)
        store = TraceStore(tmp_path)
        assert store.gc(drop_all=True)
        assert not list(store.entries())


class TestMmapFdRelease:
    """LRU eviction of mmap-backed buffers must return their fd.

    Regression test: ``_remember`` used to drop evicted entries via a
    bare ``popitem``, leaking one file descriptor (and one mapping)
    per trace a long sweep ever pushed out of the in-process tier.
    """

    @staticmethod
    def _fds() -> int:
        import os

        return len(os.listdir("/proc/self/fd"))

    @staticmethod
    def _file(store, key):
        from repro.cache.tracer import TraceRecord
        from repro.core.request import MemoryRequest, RequestType

        buf = TraceBuffer()
        buf.append_record(
            TraceRecord(
                request=MemoryRequest(
                    addr=0, rtype=RequestType.LOAD, size=64, requested_bytes=8
                ),
                cycle=1,
            )
        )
        buf.finalize(
            benchmark=key.benchmark,
            cpu_accesses=1,
            compute_cycles_per_access=1.0,
            secondary_misses=0,
            key_digest=key.digest,
        )
        store.put(key, buf)

    def test_eviction_keeps_fd_count_flat(self, tmp_path):
        keys = [_key(seed=seed) for seed in range(10)]
        writer = TraceStore(tmp_path)
        for key in keys:
            self._file(writer, key)

        reader = TraceStore(tmp_path, max_memory_entries=2, mmap=True)
        base = self._fds()
        for key in keys:
            buf = reader.get(key)
            assert buf is not None and buf.is_mmapped
            assert len(list(buf.records())) == 1
        del buf
        # Only the live LRU entries may still hold a mapping.
        assert self._fds() <= base + 2
        reader.clear_memory()
        assert self._fds() == base

    def test_discard_closes_the_mapping(self, tmp_path):
        key = _key(seed=99)
        writer = TraceStore(tmp_path)
        self._file(writer, key)
        reader = TraceStore(tmp_path, max_memory_entries=2, mmap=True)
        base = self._fds()
        assert reader.get(key) is not None
        assert self._fds() == base + 1
        reader.discard(key)
        assert self._fds() == base

    def test_closed_buffer_refuses_reads(self, tmp_path):
        from repro.trace.buffer import TraceError

        key = _key(seed=98)
        writer = TraceStore(tmp_path)
        self._file(writer, key)
        reader = TraceStore(tmp_path, mmap=True)
        buf = reader.get(key)
        buf.close()
        assert not buf.is_mmapped
        with pytest.raises(TraceError):
            buf.columns()

    def test_close_is_idempotent_and_eager_noop(self, tmp_path):
        key = _key(seed=97)
        writer = TraceStore(tmp_path)
        self._file(writer, key)
        eager = TraceStore(tmp_path).get(key)
        eager.close()  # eager buffers no-op
        assert len(list(eager.records())) == 1
        mapped = TraceStore(tmp_path, mmap=True).get(key)
        mapped.close()
        mapped.close()
