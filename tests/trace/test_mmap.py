"""Differential tests for the mmap-backed trace read path.

``TraceBuffer.load(path, mmap=True)`` must be observationally
identical to the eager ``from_bytes`` loader on every valid file, and
must fail with a :class:`TraceError` subclass -- never a segfault,
never partially populated columns -- on every truncated or corrupted
one.  Hypothesis drives both properties from generated record streams.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.tracer import TraceRecord
from repro.core.request import MemoryRequest, RequestType
from repro.trace.buffer import (
    TraceBuffer,
    TraceError,
    TraceIntegrityError,
)

_SIZES = (16, 32, 48, 64, 128, 256)


def _record(addr, cycle, rtype, size, requested, wb, sec, pf):
    if rtype is RequestType.FENCE:
        request = MemoryRequest(addr=0, rtype=RequestType.FENCE)
    else:
        request = MemoryRequest(
            addr=addr, rtype=rtype, size=size, requested_bytes=requested
        )
    return TraceRecord(
        request=request,
        cycle=cycle,
        is_writeback=wb,
        is_secondary=sec,
        is_prefetch=pf,
    )


record_specs = st.tuples(
    # line-aligned addresses: MemoryRequest enforces 64 B alignment
    st.integers(min_value=0, max_value=2**40).map(lambda n: n * 64),
    st.integers(min_value=0, max_value=2**40),  # cycle delta
    st.sampled_from([RequestType.LOAD, RequestType.STORE, RequestType.FENCE]),
    st.sampled_from(_SIZES),
    st.integers(min_value=1, max_value=16),  # requested bytes
    st.booleans(),
    st.booleans(),
    st.booleans(),
)


def _build(specs) -> TraceBuffer:
    buf = TraceBuffer()
    cycle = 0
    for addr, dcycle, rtype, size, requested, wb, sec, pf in specs:
        cycle += dcycle  # cycles are appended monotonically in capture
        buf.append_record(
            _record(addr, cycle, rtype, size, requested, wb, sec, pf)
        )
    return buf.finalize(
        benchmark="SG",
        cpu_accesses=max(1, len(specs)),
        compute_cycles_per_access=2.0,
        secondary_misses=0,
        key_digest="abc123",
    )


def _saved(buf: TraceBuffer) -> Path:
    tmp = Path(tempfile.mkdtemp(prefix="repro-mmap-test-"))
    return buf.save(tmp / "trace.rtrace")


class TestMmapDifferential:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(record_specs, max_size=40))
    def test_mmap_matches_eager_loader(self, specs):
        buf = _build(specs)
        path = _saved(buf)
        eager = TraceBuffer.from_bytes(path.read_bytes())
        mapped = TraceBuffer.load(path, mmap=True)

        assert mapped.is_mmapped
        assert not eager.is_mmapped
        assert mapped.digest() == eager.digest() == buf.digest()
        assert mapped.meta == eager.meta
        assert mapped.last_cycle == eager.last_cycle

        for got, want in zip(mapped.columns(), eager.columns(), strict=True):
            assert list(got) == list(want)
        # Round-tripping the mapped view re-serializes byte-identically.
        assert mapped.to_bytes() == path.read_bytes()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(record_specs, max_size=40))
    def test_mmap_records_are_plain_ints(self, specs):
        """mmap columns are NumPy views; records() must not leak
        NumPy scalar types into consumers."""
        buf = _build(specs)
        mapped = TraceBuffer.load(_saved(buf), mmap=True)
        for rec, want in zip(mapped.records(), buf.records(), strict=True):
            assert type(rec.cycle) is int
            assert type(rec.request.addr) is int
            assert rec.request.rtype is want.request.rtype
            assert rec.cycle == want.cycle
            assert rec.request.addr == want.request.addr
            assert (rec.is_writeback, rec.is_secondary, rec.is_prefetch) == (
                want.is_writeback,
                want.is_secondary,
                want.is_prefetch,
            )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(record_specs, min_size=1, max_size=20),
        st.data(),
    )
    def test_corrupt_byte_raises_never_partial(self, specs, data):
        """Flip any byte after the header: the mmap loader must raise
        TraceIntegrityError at column access -- and must not have
        handed out columns before the verdict."""
        buf = _build(specs)
        path = _saved(buf)
        blob = bytearray(path.read_bytes())
        # Corrupt within the column/digest region (structural header
        # damage raises TraceError at load; that is covered below).
        pos = data.draw(
            st.integers(min_value=len(blob) - 33, max_value=len(blob) - 1)
        )
        blob[pos] ^= 0xFF
        path.write_bytes(bytes(blob))

        mapped = TraceBuffer.load(path, mmap=True)  # structure still parses
        with pytest.raises(TraceIntegrityError):
            mapped.columns()
        with pytest.raises(TraceIntegrityError):
            list(mapped.records())
        with pytest.raises(TraceIntegrityError):
            mapped.digest()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(record_specs, min_size=1, max_size=20), st.data())
    def test_truncation_raises_trace_error(self, specs, data):
        buf = _build(specs)
        path = _saved(buf)
        blob = path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        path.write_bytes(blob[:cut])
        with pytest.raises(TraceError):
            mapped = TraceBuffer.load(path, mmap=True)
            # Very long headers can still parse structurally if the cut
            # only removed trailing digest bytes; the lazy check must
            # then catch it at first use.
            mapped.columns()

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.rtrace"
        path.write_bytes(b"")
        with pytest.raises(TraceError):
            TraceBuffer.load(path, mmap=True)

    def test_eager_load_unaffected(self, tmp_path):
        """mmap=False (the default) still routes through from_bytes."""
        buf = _build([(0x1000, 1, RequestType.LOAD, 64, 8, False, False, False)])
        path = buf.save(tmp_path / "t.rtrace")
        loaded = TraceBuffer.load(path)
        assert not loaded.is_mmapped
        assert loaded.digest() == buf.digest()
