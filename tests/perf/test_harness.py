"""Unit tests for the perf harness (measurement, report, comparison)."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    PerfCase,
    calibration_seconds,
    compare_reports,
    get_suite,
    load_report,
    run_suite,
    save_report,
)
from repro.perf.harness import SCHEMA, run_case

TINY = PerfCase("STREAM", "combined", 800)


def test_calibration_is_positive_and_stable():
    a = calibration_seconds(repeats=2)
    assert a > 0
    # Best-of-N of a fixed workload should land in the same decade.
    b = calibration_seconds(repeats=2)
    assert 0.1 < a / b < 10


def test_get_suite_names_and_unknown():
    assert get_suite("smoke")
    assert set(get_suite("smoke")) <= set(get_suite("full"))
    with pytest.raises(ValueError, match="unknown perf suite"):
        get_suite("nope")


def test_run_case_measures_and_digests():
    measured = run_case(TINY, repeats=2)
    assert measured.wall_seconds > 0
    assert len(measured.wall_seconds_all) == 2
    assert measured.wall_seconds == min(measured.wall_seconds_all)
    assert measured.llc_requests > 0
    assert measured.requests_per_second > 0
    assert len(measured.digest) == 64
    assert measured.phases  # PhaseProfiler attributed at least one phase


def test_run_case_digest_is_deterministic():
    assert run_case(TINY, repeats=1).digest == run_case(TINY, repeats=1).digest


def test_report_roundtrip(tmp_path):
    report = run_suite([TINY], repeats=1, suite_name="tiny")
    assert report["schema"] == SCHEMA
    assert report["calibration_seconds"] > 0
    entry = report["cases"][TINY.name]
    assert entry["normalized_throughput"] > 0
    path = save_report(report, tmp_path / "BENCH_perf.json")
    assert load_report(path) == json.loads(path.read_text()) == report


def test_run_suite_rejects_empty_case_list():
    # A zero-match --filter must error out, not write an empty report.
    with pytest.raises(ValueError, match="no cases to run"):
        run_suite([])


def test_vector_coalesce_case_records_kernel_stats():
    pair = [
        PerfCase("STREAM", "combined", 800, kind="trace_replay"),
        PerfCase("STREAM", "combined", 800, kind="vector_coalesce"),
    ]
    report = run_suite(pair, repeats=1, suite_name="tiny")
    twin = report["cases"][pair[0].name]
    entry = report["cases"][pair[1].name]
    # The fallback rate is a first-class report number (docs/performance.md).
    kernel = entry["kernel"]
    assert kernel["engaged"] >= 1
    assert kernel["fallbacks"] == 0
    assert kernel["fallback_rate"] == 0.0
    assert kernel["engagement_rate"] == 1.0
    assert "kernel" not in twin  # object twin carries no kernel block
    assert entry["digest"] == twin["digest"]
    derived = report["derived"]
    assert derived["vector_coalesce_speedup:STREAM/combined@800"] > 0
    assert derived["vector_coalesce_phase_speedup:STREAM/combined@800"] > 0


def test_load_report_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "cases": {}}))
    with pytest.raises(ValueError, match="unsupported perf report schema"):
        load_report(path)


def _fake_report(norm: float, digest: str = "d0") -> dict:
    return {
        "schema": SCHEMA,
        "cases": {
            "SG/combined@6000": {
                "benchmark": "SG",
                "config": "combined",
                "accesses": 6000,
                "seed": 0,
                "wall_seconds": 0.5,
                "normalized_throughput": norm,
                "digest": digest,
            }
        },
    }


def test_compare_flags_regression_beyond_threshold():
    comparisons = compare_reports(
        _fake_report(70.0), _fake_report(100.0), threshold=0.25
    )
    assert [c.regressed for c in comparisons] == [True]
    ok = compare_reports(_fake_report(80.0), _fake_report(100.0), threshold=0.25)
    assert [c.regressed for c in ok] == [False]


def test_compare_flags_digest_mismatch():
    same = compare_reports(_fake_report(100.0), _fake_report(100.0))
    assert [c.digest_match for c in same] == [True]
    diff = compare_reports(
        _fake_report(100.0, digest="other"), _fake_report(100.0)
    )
    assert [c.digest_match for c in diff] == [False]


def test_compare_skips_digest_when_params_differ():
    current = _fake_report(100.0, digest="other")
    current["cases"]["SG/combined@6000"]["accesses"] = 12000
    comparisons = compare_reports(current, _fake_report(100.0))
    assert [c.digest_match for c in comparisons] == [None]


def test_compare_ignores_cases_missing_from_current():
    comparisons = compare_reports({"schema": SCHEMA, "cases": {}}, _fake_report(100.0))
    assert comparisons == []
