"""Tests for the job scheduler (repro.serve.scheduler)."""

import threading
import time

import pytest

from repro.api import Session
from repro.errors import (
    CapacityError,
    ConfigError,
    JobStateError,
    QuotaError,
    UnknownBenchmark,
)
from repro.perf.digest import result_digest
from repro.serve.jobs import CANCELLED, DONE, FAILED, RUNNING, JobSpec
from repro.serve.scheduler import JobScheduler
from repro.sim.driver import PlatformConfig
from repro.sim.sweep import FIGURE_CONFIGS

SMALL = PlatformConfig(accesses=1_200)

COMBINED = SMALL.with_coalescer(FIGURE_CONFIGS["combined"])
UNCOALESCED = SMALL.with_coalescer(FIGURE_CONFIGS["uncoalesced"])
MSHR_ONLY = SMALL.with_coalescer(FIGURE_CONFIGS["mshr_only"])


def small_session() -> Session:
    return Session(accesses=SMALL.accesses, seed=SMALL.seed)


def wait_running(sched: JobScheduler, job_id: str, timeout: float = 10.0) -> None:
    """Spin until a worker has dequeued the job (state == running)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if sched.status(job_id).state == RUNNING:
            return
        time.sleep(0.005)
    raise AssertionError(f"job {job_id} never started running")


class GatedScheduler(JobScheduler):
    """Workers block on ``gate`` before running -- deterministic tests
    of queued/running states without sleeping."""

    def __init__(self, *args, **kwargs):
        self.gate = threading.Event()
        super().__init__(*args, **kwargs)

    def _execute(self, spec):
        assert self.gate.wait(30.0), "test forgot to open the gate"
        return super()._execute(spec)


@pytest.fixture
def gated():
    sched = GatedScheduler(session=small_session(), workers=1, retention=0)
    yield sched
    sched.gate.set()
    sched.close(timeout=10.0)


class TestLifecycle:
    def test_submit_run_result(self):
        sched = JobScheduler(session=small_session(), workers=1)
        try:
            status = sched.submit(JobSpec("STREAM", COMBINED))
            status = sched.wait(status.job_id, timeout=60.0)
            assert status.state == DONE
            assert status.cached is False
            job = sched.result(status.job_id)
            assert result_digest(job.result) == job.result_digest
            # Bit-identical to a direct Session.run of the same platform.
            direct = small_session().run("STREAM", platform=COMBINED)
            assert result_digest(direct) == job.result_digest
        finally:
            sched.close(timeout=10.0)

    def test_duplicate_after_completion_is_instant_cache_hit(self):
        sched = JobScheduler(session=small_session(), workers=1)
        try:
            first = sched.wait(
                sched.submit(JobSpec("STREAM", COMBINED)).job_id, timeout=60.0
            )
            dup = sched.submit(JobSpec("STREAM", COMBINED, tenant="other"))
            assert dup.terminal and dup.state == DONE
            assert dup.cached is True
            assert (
                sched.result(dup.job_id).result_digest
                == sched.result(first.job_id).result_digest
            )
        finally:
            sched.close(timeout=10.0)

    def test_unknown_benchmark_rejected_at_submit(self, gated):
        with pytest.raises(UnknownBenchmark):
            gated.submit(JobSpec("NOT_A_BENCHMARK", SMALL))

    def test_benchmark_name_is_case_insensitive(self, gated):
        status = gated.submit(JobSpec("stream", COMBINED))
        assert status.benchmark == "STREAM"

    def test_result_before_done_is_state_error(self, gated):
        status = gated.submit(JobSpec("STREAM", COMBINED))
        with pytest.raises(JobStateError):
            gated.result(status.job_id)

    def test_failed_job_surfaces_error_string(self):
        # An in-cache poisoned platform cannot happen via submit (the
        # benchmark is validated), so force a failure through a worker
        # that always raises.
        class Exploding(JobScheduler):
            def _execute(self, spec):
                raise RuntimeError("boom")

        sched = Exploding(session=small_session(), workers=1)
        try:
            status = sched.wait(
                sched.submit(JobSpec("STREAM", COMBINED)).job_id, timeout=30.0
            )
            assert status.state == FAILED
            assert "boom" in status.error
            with pytest.raises(JobStateError, match="boom"):
                sched.result(status.job_id)
        finally:
            sched.close(timeout=10.0)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigError):
            JobScheduler(session=small_session(), executor="carrier-pigeon")


class TestCoalescing:
    def test_identical_inflight_submissions_attach(self, gated):
        primary = gated.submit(JobSpec("STREAM", COMBINED, tenant="a"))
        follower = gated.submit(JobSpec("STREAM", COMBINED, tenant="b"))
        assert follower.attached_to == primary.job_id
        gated.gate.set()
        done_f = gated.wait(follower.job_id, timeout=60.0)
        done_p = gated.wait(primary.job_id, timeout=60.0)
        assert done_p.state == done_f.state == DONE
        assert done_p.cached is False  # the primary simulated
        assert done_f.cached is True  # the follower rode along
        assert (
            gated.result(primary.job_id).result_digest
            == gated.result(follower.job_id).result_digest
        )
        assert gated.stats()["counters"]["simulated"] == 1

    def test_followers_never_consume_queue_slots(self):
        sched = GatedScheduler(
            session=small_session(), workers=1, queue_limit=1, retention=0
        )
        try:
            blocker = sched.submit(JobSpec("STREAM", COMBINED))
            wait_running(sched, blocker.job_id)  # off the queue, gated
            sched.submit(JobSpec("STREAM", UNCOALESCED))  # fills the queue
            for _ in range(5):  # identical duplicates attach, never 429
                sched.submit(JobSpec("STREAM", UNCOALESCED))
            with pytest.raises(CapacityError):
                sched.submit(JobSpec("STREAM", MSHR_ONLY))
        finally:
            sched.gate.set()
            sched.close(timeout=10.0)


class TestAdmission:
    def test_tenant_quota(self):
        sched = GatedScheduler(
            session=small_session(), workers=1, tenant_quota=1, retention=0
        )
        try:
            sched.submit(JobSpec("STREAM", COMBINED, tenant="greedy"))
            with pytest.raises(QuotaError):
                sched.submit(JobSpec("STREAM", UNCOALESCED, tenant="greedy"))
            # Another tenant is unaffected.
            sched.submit(JobSpec("STREAM", UNCOALESCED, tenant="polite"))
        finally:
            sched.gate.set()
            sched.close(timeout=10.0)

    def test_quota_is_a_capacity_error(self):
        assert issubclass(QuotaError, CapacityError)

    def test_closed_scheduler_rejects(self):
        sched = JobScheduler(session=small_session(), workers=1)
        sched.close(timeout=10.0)
        with pytest.raises(CapacityError):
            sched.submit(JobSpec("STREAM", COMBINED))


class TestCancel:
    def test_cancel_queued_job(self, gated):
        gated.submit(JobSpec("STREAM", COMBINED))  # running (gated)
        queued = gated.submit(JobSpec("STREAM", UNCOALESCED))
        cancelled = gated.cancel(queued.job_id)
        assert cancelled.state == CANCELLED
        with pytest.raises(JobStateError):
            gated.result(queued.job_id)

    def test_cancel_running_job_is_state_error(self, gated):
        running = gated.submit(JobSpec("STREAM", COMBINED))
        wait_running(gated, running.job_id)
        with pytest.raises(JobStateError):
            gated.cancel(running.job_id)

    def test_cancelling_primary_promotes_follower(self, gated):
        gated.submit(JobSpec("STREAM", COMBINED))  # running (gated)
        primary = gated.submit(JobSpec("STREAM", UNCOALESCED, tenant="a"))
        follower = gated.submit(JobSpec("STREAM", UNCOALESCED, tenant="b"))
        assert follower.attached_to == primary.job_id
        gated.cancel(primary.job_id)
        gated.gate.set()
        done = gated.wait(follower.job_id, timeout=60.0)
        assert done.state == DONE
        assert done.cached is False  # promoted: it ran the simulation

    def test_cancel_follower_leaves_primary(self, gated):
        gated.submit(JobSpec("STREAM", COMBINED))  # running (gated)
        primary = gated.submit(JobSpec("STREAM", UNCOALESCED, tenant="a"))
        follower = gated.submit(JobSpec("STREAM", UNCOALESCED, tenant="b"))
        gated.cancel(follower.job_id)
        gated.gate.set()
        assert gated.wait(primary.job_id, timeout=60.0).state == DONE


class TestTraceSharing:
    def test_one_capture_for_all_coalescer_configs(self):
        sched = JobScheduler(session=small_session(), workers=4)
        try:
            ids = [
                sched.submit(
                    JobSpec("STREAM", SMALL.with_coalescer(cfg), label=name)
                ).job_id
                for name, cfg in FIGURE_CONFIGS.items()
            ]
            for job_id in ids:
                assert sched.wait(job_id, timeout=120.0).state == DONE
            # Four configs differ only downstream of the LLC: exactly
            # one front-end capture no matter how workers interleaved.
            assert sched.stats()["trace_store"]["puts"] == 1
        finally:
            sched.close(timeout=10.0)


class TestRetention:
    def test_cache_is_bounded(self):
        sched = JobScheduler(session=small_session(), workers=1, retention=2)
        try:
            for cfg in ("uncoalesced", "mshr_only", "dmc_only", "combined"):
                status = sched.submit(
                    JobSpec("STREAM", SMALL.with_coalescer(FIGURE_CONFIGS[cfg]))
                )
                assert sched.wait(status.job_id, timeout=60.0).state == DONE
            assert len(sched.session.cache_keys()) <= 2
            assert sched.stats()["counters"]["retention_evicted"] >= 2
        finally:
            sched.close(timeout=10.0)


class TestShutdownCheckpointing:
    def test_close_writes_sweep_compatible_checkpoints(self, tmp_path):
        from repro.sim.shard import read_checkpoint

        sched = JobScheduler(
            session=small_session(), workers=1, checkpoint_dir=tmp_path
        )
        status = sched.submit(JobSpec("STREAM", COMBINED, label="combined"))
        assert sched.wait(status.job_id, timeout=60.0).state == DONE
        digest = sched.result(status.job_id).result_digest
        summary = sched.close(timeout=10.0)
        assert summary["checkpointed"] == 1
        files = sorted(tmp_path.glob("*.jsonl"))
        assert len(files) == 1
        _header, restored = read_checkpoint(files[0])
        assert result_digest(restored) == digest

    def test_restart_restores_checkpoints_as_cache_hits(self, tmp_path):
        first = JobScheduler(
            session=small_session(), workers=1, checkpoint_dir=tmp_path
        )
        status = first.submit(JobSpec("STREAM", COMBINED, label="combined"))
        first.wait(status.job_id, timeout=60.0)
        digest = first.result(status.job_id).result_digest
        first.close(timeout=10.0)

        second = JobScheduler(
            session=small_session(), workers=1, checkpoint_dir=tmp_path
        )
        try:
            assert second.stats()["counters"]["restored"] == 1
            dup = second.submit(JobSpec("STREAM", COMBINED))
            assert dup.terminal and dup.cached is True
            assert second.result(dup.job_id).result_digest == digest
        finally:
            second.close(timeout=10.0)

    def test_close_cancels_queued_jobs(self):
        sched = GatedScheduler(session=small_session(), workers=1, retention=0)
        blocker = sched.submit(JobSpec("STREAM", COMBINED))
        wait_running(sched, blocker.job_id)  # dequeued, gated
        queued = sched.submit(JobSpec("STREAM", UNCOALESCED))
        # close() cancels the queued job immediately, then blocks
        # draining the gated run -- so drive it from a thread.
        summary: dict = {}
        closer = threading.Thread(
            target=lambda: summary.update(sched.close(timeout=30.0))
        )
        closer.start()
        deadline = time.monotonic() + 10.0
        while sched.status(queued.job_id).state != CANCELLED:
            assert time.monotonic() < deadline, "close never cancelled the queue"
            time.sleep(0.005)
        sched.gate.set()  # let the running job drain
        closer.join(timeout=30.0)
        assert summary["cancelled"] == 1
        assert sched.status(blocker.job_id).state == DONE


class TestProcessExecutor:
    def test_process_run_matches_thread_run(self, tmp_path):
        thread_sched = JobScheduler(session=small_session(), workers=1)
        try:
            status = thread_sched.submit(JobSpec("STREAM", COMBINED))
            thread_sched.wait(status.job_id, timeout=60.0)
            expected = thread_sched.result(status.job_id).result_digest
        finally:
            thread_sched.close(timeout=10.0)

        proc_sched = JobScheduler(
            session=small_session(),
            workers=1,
            executor="process",
            checkpoint_dir=tmp_path,
        )
        try:
            status = proc_sched.submit(JobSpec("STREAM", COMBINED))
            done = proc_sched.wait(status.job_id, timeout=120.0)
            assert done.state == DONE
            assert proc_sched.result(status.job_id).result_digest == expected
        finally:
            proc_sched.close(timeout=10.0)
