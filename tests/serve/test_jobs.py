"""Tests for the job server's wire model (repro.serve.jobs)."""

import json

import pytest

from repro.errors import SchemaError
from repro.perf.digest import result_digest
from repro.serve.jobs import (
    DONE,
    JOB_SCHEMA,
    QUEUED,
    TERMINAL_STATES,
    JobResult,
    JobSpec,
    JobStatus,
)
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.sim.sweep import FIGURE_CONFIGS

SMALL = PlatformConfig(accesses=1_200)


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(
            "STREAM",
            SMALL.with_coalescer(FIGURE_CONFIGS["combined"]),
            tenant="acme",
            label="combined",
        )
        back = JobSpec.from_json(spec.to_json())
        assert back == spec
        assert back.digest == spec.digest

    def test_key_is_benchmark_and_digest(self):
        spec = JobSpec("SG", SMALL)
        assert spec.key == ("SG", SMALL.content_digest())

    def test_label_and_tenant_do_not_change_identity(self):
        a = JobSpec("STREAM", SMALL, tenant="a", label="x")
        b = JobSpec("STREAM", SMALL, tenant="b", label="y")
        assert a.key == b.key

    def test_envelope_is_versioned(self):
        doc = json.loads(JobSpec("STREAM", SMALL).to_json())
        assert doc["schema"] == JOB_SCHEMA
        assert doc["kind"] == "job-spec"

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(schema=99),
            lambda d: d.update(kind="job-status"),
            lambda d: d.pop("benchmark"),
            lambda d: d.update(benchmark=""),
            lambda d: d.pop("platform"),
            lambda d: d.update(tenant=""),
        ],
    )
    def test_rejects_malformed_documents(self, mutate):
        doc = JobSpec("STREAM", SMALL).to_dict()
        mutate(doc)
        with pytest.raises(SchemaError):
            JobSpec.from_json(doc)

    def test_rejects_non_json_and_non_object(self):
        with pytest.raises(SchemaError):
            JobSpec.from_json("{not json")
        with pytest.raises(SchemaError):
            JobSpec.from_json(json.dumps([1, 2, 3]))

    def test_schema_error_is_a_value_error(self):
        # Compat contract: SchemaError subclasses ConfigError(ValueError).
        with pytest.raises(ValueError):
            JobSpec.from_json("[]")


class TestJobStatus:
    def test_round_trip(self):
        status = JobStatus(
            job_id="j000001",
            tenant="acme",
            benchmark="STREAM",
            digest="d" * 40,
            label="combined",
            state=DONE,
            cached=True,
        )
        back = JobStatus.from_json(json.dumps(status.to_dict()))
        assert back == status

    def test_terminal_property(self):
        kw = dict(
            job_id="j1", tenant="t", benchmark="b", digest="d", label=""
        )
        assert not JobStatus(state=QUEUED, **kw).terminal
        for state in TERMINAL_STATES:
            assert JobStatus(state=state, **kw).terminal

    def test_missing_field_is_schema_error(self):
        doc = {"schema": JOB_SCHEMA, "kind": "job-status", "job_id": "j1"}
        with pytest.raises(SchemaError):
            JobStatus.from_json(doc)


class TestJobResult:
    @pytest.fixture(scope="class")
    def served(self):
        result = run_benchmark("STREAM", platform=SMALL)
        return JobResult(
            job_id="j000001",
            benchmark="STREAM",
            digest=SMALL.content_digest(),
            cached=False,
            result=result,
            result_digest=result_digest(result),
        )

    def test_round_trip_preserves_result_digest(self, served):
        back = JobResult.from_json(served.to_json())
        assert back.result_digest == served.result_digest
        # The wire payload must reproduce the digest from scratch --
        # this is the client-side verification the protocol promises.
        assert result_digest(back.result) == served.result_digest

    def test_wire_payload_carries_metrics(self, served):
        doc = served.to_dict()
        assert doc["kind"] == "job-result"
        assert "metrics" in doc
        back = JobResult.from_json(doc)
        assert back.result.metrics is not None

    def test_rejects_wrong_kind(self, served):
        doc = served.to_dict()
        doc["kind"] = "job-spec"
        with pytest.raises(SchemaError):
            JobResult.from_json(doc)

    def test_rejects_missing_result(self):
        with pytest.raises(SchemaError):
            JobResult.from_json(
                {"schema": JOB_SCHEMA, "kind": "job-result", "job_id": "j1"}
            )
