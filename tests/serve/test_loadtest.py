"""Tests for the load-test harness (repro.serve.loadtest)."""

import pytest

from repro.errors import SchemaError
from repro.serve.loadtest import (
    SERVE_SCHEMA,
    build_specs,
    check_report,
    compare_serve_reports,
    load_serve_report,
    run_load_test,
    save_serve_report,
)


@pytest.fixture(scope="module")
def report():
    """One small but real load-test run shared by the module."""
    return run_load_test(
        clients=40,
        benchmarks=("STREAM",),
        accesses=1_200,
        tenants=4,
        workers=2,
        ramp_seconds=0.1,
    )


class TestBuildSpecs:
    def test_grid_shape(self):
        specs = build_specs(("STREAM", "SG"), accesses=1_200)
        assert len(specs) == 8  # 2 benchmarks x 4 figure configs
        assert len({s.key for s in specs}) == 8

    def test_accesses_and_seed_flow_through(self):
        (spec, *_rest) = build_specs(("STREAM",), accesses=999, seed=5)
        assert spec.platform.accesses == 999
        assert spec.platform.seed == 5


class TestRunLoadTest:
    def test_zero_errors_and_full_completion(self, report):
        assert report["errors"] == 0
        assert report["completed"] == report["clients"] == 40

    def test_duplicate_cache_hit_rate(self, report):
        cache = report["cache"]
        assert cache["duplicate_requests"] == 40 - report["distinct_configs"]
        assert cache["duplicate_hit_rate"] >= 0.9

    def test_single_capture_per_front_end(self, report):
        # One benchmark -> one front-end key -> exactly one capture.
        assert report["trace_store"]["puts"] == 1

    def test_served_digests_match_direct_runs(self, report):
        assert report["direct_digest_mismatches"] == []
        assert len(report["result_digests"]) == report["distinct_configs"]

    def test_report_shape(self, report):
        assert report["schema"] == SERVE_SCHEMA
        latency = report["latency_seconds"]
        assert 0 < latency["p50"] <= latency["p90"] <= latency["p99"] <= latency["max"]
        assert report["throughput_rps"] > 0
        assert report["normalized_throughput"] > 0
        assert check_report(report) == []


class TestGating:
    def test_check_report_flags_errors(self, report):
        bad = {**report, "errors": 3, "error_samples": ["x: Boom: y"]}
        problems = check_report(bad)
        assert any("3 client errors" in p for p in problems)

    def test_check_report_flags_low_hit_rate(self, report):
        bad = {**report, "cache": {**report["cache"], "duplicate_hit_rate": 0.5}}
        assert any("hit rate" in p for p in check_report(bad))

    def test_check_report_flags_digest_divergence(self, report):
        bad = {**report, "direct_digest_mismatches": ["STREAM/combined"]}
        assert any("diverge" in p for p in check_report(bad))

    def test_compare_clean_against_self(self, report):
        assert compare_serve_reports(report, report) == []

    def test_compare_flags_digest_change(self, report):
        name, digest = next(iter(report["result_digests"].items()))
        tampered = {
            **report,
            "result_digests": {**report["result_digests"], name: "f" * len(digest)},
        }
        problems = compare_serve_reports(tampered, report)
        assert any("behaviour changed" in p for p in problems)

    def test_compare_flags_throughput_regression(self, report):
        slow = {**report, "normalized_throughput": report["normalized_throughput"] / 10}
        problems = compare_serve_reports(slow, report, threshold=0.5)
        assert any("normalized throughput" in p for p in problems)

    def test_compare_skips_digests_across_different_params(self, report):
        other = {**report, "accesses": report["accesses"] * 2,
                 "result_digests": {"STREAM/combined": "not-comparable"}}
        # Different workload params: digests are not compared.
        assert not any(
            "behaviour changed" in p for p in compare_serve_reports(other, report)
        )


class TestReportIO:
    def test_round_trip(self, report, tmp_path):
        path = save_serve_report(report, tmp_path / "BENCH_serve.json")
        assert load_serve_report(path) == report

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(SchemaError):
            load_serve_report(path)
