"""Tests for the HTTP layer (repro.serve.server + client).

The stress tests in TestConcurrency are the PR's headline contract:
many overlapping clients (threads and asyncio tasks) submitting
digest-identical work must all succeed, observe identical results, and
trigger exactly one front-end trace capture between them.
"""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.api import Session
from repro.errors import (
    JobNotFound,
    JobStateError,
    QuotaError,
    ReproError,
    SchemaError,
    UnknownBenchmark,
)
from repro.perf.digest import result_digest
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.jobs import JobSpec
from repro.serve.scheduler import JobScheduler
from repro.serve.server import running_server
from repro.sim.driver import PlatformConfig
from repro.sim.sweep import FIGURE_CONFIGS

SMALL = PlatformConfig(accesses=1_200)
COMBINED = SMALL.with_coalescer(FIGURE_CONFIGS["combined"])
UNCOALESCED = SMALL.with_coalescer(FIGURE_CONFIGS["uncoalesced"])


@pytest.fixture(scope="module")
def server():
    scheduler = JobScheduler(
        session=Session(accesses=SMALL.accesses, seed=SMALL.seed),
        workers=4,
        queue_limit=32,
        tenant_quota=64,
    )
    with running_server(scheduler) as srv:
        yield srv
    scheduler.close(timeout=10.0)


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.address, timeout=30.0)


class TestEndpoints:
    def test_health(self, client):
        assert client.health() is True

    def test_platform_document(self, client):
        doc = client.platform()
        assert doc["kind"] == "platform"
        assert doc["platform"]["accesses"] == SMALL.accesses
        assert doc["digest"]

    def test_submit_poll_fetch_verify(self, client):
        job = client.run(JobSpec("STREAM", COMBINED, label="combined"))
        assert result_digest(job.result) == job.result_digest
        direct = Session(accesses=SMALL.accesses, seed=SMALL.seed).run(
            "STREAM", platform=COMBINED
        )
        assert result_digest(direct) == job.result_digest

    def test_duplicate_submission_hits_cache(self, client):
        client.run(JobSpec("STREAM", COMBINED))
        dup = client.submit(JobSpec("STREAM", COMBINED, tenant="again"))
        assert dup.terminal and dup.cached is True

    def test_job_listing_filters_by_tenant(self, client):
        client.run(JobSpec("STREAM", COMBINED, tenant="lister"))
        mine = client.jobs(tenant="lister")
        assert mine and all(s.tenant == "lister" for s in mine)
        assert len(client.jobs()) >= len(mine)

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["executor"] == "thread"
        assert "counters" in stats and "trace_store" in stats

    def test_cancel_endpoint_on_done_job_is_409(self, client):
        status = client.run(JobSpec("STREAM", COMBINED)).job_id
        with pytest.raises(JobStateError):
            client.cancel(status)


class TestErrorMapping:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(JobNotFound):
            client.status("j999999")
        with pytest.raises(JobNotFound):
            client.result("j999999")

    def test_unknown_benchmark_is_400(self, client):
        with pytest.raises(UnknownBenchmark):
            client.submit(JobSpec("NOT_A_BENCHMARK", SMALL))

    def test_malformed_body_is_schema_error(self, server, client):
        req = urllib.request.Request(
            server.address + "/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=10.0)
        assert exc_info.value.code == 400
        doc = json.loads(exc_info.value.read())
        assert doc["error"] == "SchemaError"
        # And through the typed client it raises the typed exception.
        with pytest.raises(SchemaError):
            client._request("POST", "/v1/jobs", b"{not json")

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(server.address + "/v1/nope", timeout=10.0)
        assert exc_info.value.code == 404

    def test_wrong_method_is_405(self, server):
        req = urllib.request.Request(
            server.address + "/v1/jobs", method="PUT", data=b""
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=10.0)
        assert exc_info.value.code == 405

    def test_quota_exhaustion_is_429(self):
        scheduler = JobScheduler(
            session=Session(accesses=SMALL.accesses), workers=1, tenant_quota=1
        )
        # Stall the one worker so the first job pins the quota.
        gate = threading.Event()
        original = scheduler._execute
        scheduler._execute = lambda spec: (gate.wait(30.0), original(spec))[1]
        try:
            with running_server(scheduler) as srv:
                c = ServeClient(srv.address, timeout=10.0)
                c.submit(JobSpec("STREAM", COMBINED, tenant="greedy"))
                with pytest.raises(QuotaError):
                    c.submit(JobSpec("STREAM", UNCOALESCED, tenant="greedy"))
                gate.set()
        finally:
            gate.set()
            scheduler.close(timeout=10.0)


class TestConcurrency:
    def test_threaded_clients_share_one_capture(self):
        """Overlapping jobs from many threads: every client succeeds,
        digest-identical work returns identical results, and the trace
        store files exactly one capture."""
        scheduler = JobScheduler(
            session=Session(accesses=SMALL.accesses, seed=SMALL.seed),
            workers=4,
            queue_limit=32,
            tenant_quota=64,
        )
        specs = [
            SMALL.with_coalescer(cfg) for cfg in FIGURE_CONFIGS.values()
        ]
        digests: dict[int, str] = {}
        errors: list[Exception] = []
        try:
            with running_server(scheduler) as srv:
                def one(i: int) -> None:
                    try:
                        c = ServeClient(srv.address, timeout=60.0)
                        spec = JobSpec(
                            "STREAM",
                            specs[i % len(specs)],
                            tenant=f"tenant-{i % 4}",
                        )
                        job = c.run(spec, timeout=120.0)
                        assert result_digest(job.result) == job.result_digest
                        digests[i] = job.result_digest
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=one, args=(i,)) for i in range(24)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=180.0)
            assert not errors, errors[:3]
            assert len(digests) == 24
            # Clients of the same config saw identical results ...
            by_config: dict[int, set] = {}
            for i, digest in digests.items():
                by_config.setdefault(i % len(specs), set()).add(digest)
            assert all(len(group) == 1 for group in by_config.values())
            # ... and 4 distinct configs of one front end -> 1 capture.
            assert scheduler.stats()["trace_store"]["puts"] == 1
        finally:
            scheduler.close(timeout=10.0)

    def test_async_clients_digest_identical(self, server):
        """Two tenants with identical front-end configs, many async
        clients: single-capture sharing is asserted via TraceStore
        stats at scheduler level by the threaded test; here the async
        stack must agree on results end to end."""
        async def drive():
            c = AsyncServeClient(server.host, server.port, timeout=30.0)
            spec_a = JobSpec("SG", COMBINED, tenant="alpha")
            spec_b = JobSpec("SG", COMBINED, tenant="beta")
            jobs = await asyncio.gather(
                *[c.run(spec_a if i % 2 else spec_b) for i in range(16)]
            )
            return [j.result_digest for j in jobs]

        digests = asyncio.run(drive())
        assert len(set(digests)) == 1
        direct = Session(accesses=SMALL.accesses, seed=SMALL.seed).run(
            "SG", platform=COMBINED
        )
        assert result_digest(direct) == digests[0]

    def test_error_bodies_rebuild_typed_exceptions(self, client):
        # The cross-stack contract the clients rely on.
        from repro.serve.client import raise_for_error

        with pytest.raises(QuotaError):
            raise_for_error({"error": "QuotaError", "message": "m"})
        with pytest.raises(ReproError):
            raise_for_error({"error": "NoSuchClass", "message": "m"})
        raise_for_error({})  # no error key: no-op
