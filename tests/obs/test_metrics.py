"""Tests for the metric primitives and registry semantics."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, StageTimeline


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter("requests_total")
        assert c.value() == 0.0
        assert c.total() == 0.0

    def test_inc_accumulates(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent_series(self):
        c = Counter("requests_total")
        c.inc(kind="read")
        c.inc(3, kind="write")
        assert c.value(kind="read") == 1
        assert c.value(kind="write") == 3
        assert c.value(kind="atomic") == 0
        assert c.total() == 4

    def test_label_order_is_canonical(self):
        c = Counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(a="1", b="2") == 2
        assert len(list(c.samples())) == 1

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("has space")
        with pytest.raises(ValueError):
            Counter("")


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth")
        g.set(5)
        g.set(2)
        assert g.value() == 2

    def test_set_max_keeps_high_water_mark(self):
        g = Gauge("depth")
        g.set_max(5)
        g.set_max(2)
        g.set_max(9)
        assert g.value() == 9


class TestHistogram:
    def test_empty_series_reads_as_zero(self):
        h = Histogram("lat", buckets=(1, 2, 4))
        assert h.count() == 0
        assert h.total() == 0.0
        assert h.mean() == 0.0
        assert h.bucket_counts() == [0, 0, 0, 0]

    def test_single_sample(self):
        h = Histogram("lat", buckets=(1, 2, 4))
        h.observe(3)
        assert h.count() == 1
        assert h.mean() == 3.0
        # 3 falls in the (2, 4] bucket.
        assert h.bucket_counts() == [0, 0, 1, 0]

    def test_boundary_lands_in_lower_bucket(self):
        h = Histogram("lat", buckets=(1, 2, 4))
        h.observe(2)
        assert h.bucket_counts() == [0, 1, 0, 0]

    def test_overflow_bucket(self):
        h = Histogram("lat", buckets=(1, 2, 4))
        h.observe(100)
        assert h.bucket_counts() == [0, 0, 0, 1]

    def test_min_max_tracking(self):
        h = Histogram("lat", buckets=(10,))
        for v in (5, 1, 8):
            h.observe(v)
        (_, series), = h.samples()
        assert series.min == 1
        assert series.max == 8

    def test_bounds_sorted_and_deduped(self):
        h = Histogram("lat", buckets=(4, 1, 4, 2))
        assert h.buckets == (1.0, 2.0, 4.0)

    def test_empty_bounds_fall_back_to_defaults(self):
        assert Histogram("lat", buckets=()).buckets == Histogram.DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_introspection(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg
        assert "missing" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]
        assert reg.get("missing") is None

    def test_flat_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2, kind="read")
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1, 2)).observe(2)
        flat = reg.as_flat_dict()
        assert flat["c{kind=read}"] == 2
        assert flat["g"] == 7
        assert flat["h_count"] == 1
        assert flat["h_sum"] == 2
        assert flat["h_mean"] == 2

    def test_flat_dict_of_empty_run(self):
        reg = MetricsRegistry()
        reg.counter("never_incremented")
        reg.histogram("never_observed")
        assert reg.as_flat_dict() == {}


class TestRegistryMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2, op="read")
        b.counter("c").inc(3, op="read")
        b.counter("c").inc(1, op="write")
        assert a.merge(b) is a
        assert a.counter("c").value(op="read") == 5
        assert a.counter("c").value(op="write") == 1

    def test_gauges_take_incoming_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.gauge("g").value() == 9

    def test_histograms_add_bucket_counts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 2)).observe(2)
        b.histogram("h", buckets=(1, 2)).observe(5)
        a.merge(b)
        h = a.histogram("h", buckets=(1, 2))
        assert h.count() == 3
        assert h.bucket_counts() == [1, 1, 1]
        (_, series), = h.samples()
        assert series.min == 1
        assert series.max == 5

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 4)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_merge_brings_unknown_metrics_across(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only_in_b", help="h", unit="u").inc(4)
        a.merge(b)
        assert a.counter("only_in_b").value() == 4
        assert a.get("only_in_b").unit == "u"

    def test_merge_of_empty_registries(self):
        a = MetricsRegistry()
        a.merge(MetricsRegistry())
        assert len(a) == 0

    def test_timelines_concatenate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.timeline.record(1, "sorter", "full")
        b.timeline.record(2, "crq", "fill", 10)
        a.merge(b)
        assert len(a.timeline) == 2
        assert a.timeline.stages() == ["sorter", "crq"]


class TestTimeline:
    def test_record_and_filter(self):
        tl = StageTimeline()
        tl.record(1, "sorter", "full", 16)
        tl.record(2, "crq", "fill")
        tl.record(3, "sorter", "timeout", 4)
        assert len(tl) == 3
        assert [e.cycle for e in tl.iter_events(stage="sorter")] == [1, 3]
        assert [e.event for e in tl.iter_events(event="fill")] == ["fill"]

    def test_bounded_capacity_counts_drops(self):
        tl = StageTimeline(max_events=2)
        for cycle in range(5):
            tl.record(cycle, "s", "e")
        assert len(tl) == 2
        assert tl.dropped == 3

    def test_event_as_dict_omits_missing_value(self):
        tl = StageTimeline()
        tl.record(1, "s", "e")
        tl.record(2, "s", "e", 7)
        first, second = tl.events
        assert "value" not in first.as_dict()
        assert second.as_dict()["value"] == 7


class TestBoundHandles:
    """bind() handles must be observationally identical to keyword
    labels -- same values, same series set, same flat dict -- since
    the hot paths use them and the result digest covers the output."""

    def test_counter_bind_matches_labelled_inc(self):
        a, b = Counter("c_total"), Counter("c_total")
        bound = a.bind(op="read")
        bound.inc()
        bound.inc(2.5)
        b.inc(op="read")
        b.inc(2.5, op="read")
        assert list(a.samples()) == list(b.samples())

    def test_counter_bind_no_labels(self):
        c = Counter("c_total")
        c.bind().inc(3)
        assert c.value() == 3

    def test_bound_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c_total").bind().inc(-1)

    def test_gauge_bind_set_and_set_max(self):
        a, b = Gauge("g"), Gauge("g")
        bound = a.bind(k="v")
        bound.set(5)
        bound.set_max(3)  # below current max: ignored
        bound.set_max(9)
        b.set(5, k="v")
        b.set_max(3, k="v")
        b.set_max(9, k="v")
        assert list(a.samples()) == list(b.samples())

    def test_histogram_bind_matches_labelled_observe(self):
        a = Histogram("h", buckets=(1, 10))
        b = Histogram("h", buckets=(1, 10))
        bound = a.bind(stage="x")
        for v in (0.5, 5, 50):
            bound.observe(v)
            b.observe(v, stage="x")
        sa = {tuple(sorted(k.items())): s for k, s in a.samples()}
        sb = {tuple(sorted(k.items())): s for k, s in b.samples()}
        assert sa.keys() == sb.keys()
        for key in sa:
            assert sa[key].counts == sb[key].counts
            assert sa[key].sum == sb[key].sum
            assert (sa[key].min, sa[key].max) == (sb[key].min, sb[key].max)

    def test_unused_bound_handles_create_no_series(self):
        # Digest safety: binding alone must not materialize a series.
        c, g, h = Counter("c_total"), Gauge("g"), Histogram("h")
        c.bind(op="read")
        g.bind(k="v")
        h.bind(stage="x")
        assert not list(c.samples())
        assert not list(g.samples())
        assert not list(h.samples())

    def test_histogram_bind_before_first_observe_is_lazy(self):
        h = Histogram("h", buckets=(1,))
        bound = h.bind(stage="x")
        other = h.bind(stage="x")
        bound.observe(0.5)
        other.observe(0.5)  # second handle sees the same series
        assert h.count(stage="x") == 2

    def test_null_registry_bind_is_noop(self):
        from repro.obs import NULL_REGISTRY

        bound = NULL_REGISTRY.counter("c_total").bind(op="x")
        bound.inc()
        bound.observe(1.0)
        bound.set(2.0)
        bound.set_max(3.0)
