"""Tests for the registry exporters (JSON-lines, table, profiler)."""

import json

import pytest

from repro.obs import MetricsRegistry, PhaseProfiler
from repro.obs.export import (
    format_registry_table,
    registry_from_json_lines,
    registry_to_json_lines,
    write_json_lines,
)


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("c_total", help="a counter", unit="bytes").inc(3, kind="read")
    reg.counter("c_total").inc(1, kind="write")
    reg.gauge("g").set(2.5)
    h = reg.histogram("h", buckets=(1, 2, 4), unit="cycles")
    for v in (1, 3, 9):
        h.observe(v)
    reg.timeline.record(10, "sorter", "full", 16)
    return reg


class TestJsonLines:
    def test_every_line_is_valid_json(self):
        for line in registry_to_json_lines(make_registry()):
            doc = json.loads(line)
            assert "kind" in doc

    def test_round_trip_preserves_values(self):
        original = make_registry()
        lines = list(registry_to_json_lines(original))
        rebuilt = registry_from_json_lines(lines)

        assert rebuilt.counter("c_total").value(kind="read") == 3
        assert rebuilt.counter("c_total").value(kind="write") == 1
        assert rebuilt.get("c_total").unit == "bytes"
        assert rebuilt.gauge("g").value() == 2.5
        h = rebuilt.get("h")
        assert h.buckets == (1.0, 2.0, 4.0)
        assert h.count() == 3
        assert h.bucket_counts() == [1, 0, 1, 1]
        (_, series), = h.samples()
        assert series.min == 1
        assert series.max == 9
        assert len(rebuilt.timeline) == 1
        assert rebuilt.timeline.events[0].value == 16

    def test_round_trip_flat_dicts_match(self):
        original = make_registry()
        rebuilt = registry_from_json_lines(registry_to_json_lines(original))
        assert rebuilt.as_flat_dict() == original.as_flat_dict()

    def test_include_timeline_false(self):
        lines = list(
            registry_to_json_lines(make_registry(), include_timeline=False)
        )
        assert all(json.loads(l)["kind"] != "timeline" for l in lines)

    def test_run_headers_and_blanks_are_skipped(self):
        text = "\n".join(
            ['{"kind": "run", "benchmark": "HPCG"}', ""]
            + list(registry_to_json_lines(make_registry()))
        )
        rebuilt = registry_from_json_lines(text)
        assert rebuilt.counter("c_total").total() == 4

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            registry_from_json_lines(['{"kind": "bogus", "name": "x"}'])

    def test_multi_run_file_merges(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        write_json_lines(
            make_registry(), path, header={"benchmark": "A"}
        )
        write_json_lines(
            make_registry(), path, header={"benchmark": "B"}, append=True
        )
        text = path.read_text()
        headers = [
            json.loads(l)
            for l in text.splitlines()
            if json.loads(l).get("kind") == "run"
        ]
        assert [h["benchmark"] for h in headers] == ["A", "B"]
        merged = registry_from_json_lines(text)
        # Two identical runs folded together: counters doubled.
        assert merged.counter("c_total").total() == 8
        assert merged.get("h").count() == 6

    def test_empty_registry_round_trips(self):
        rebuilt = registry_from_json_lines(
            registry_to_json_lines(MetricsRegistry())
        )
        assert len(rebuilt) == 0


class TestTable:
    def test_table_mentions_every_metric(self):
        table = format_registry_table(make_registry(), title="run")
        assert "run" in table
        assert "c_total" in table
        assert "kind=read" in table
        assert "h" in table
        assert "n=3" in table

    def test_empty_registry_renders(self):
        assert format_registry_table(MetricsRegistry()) != ""


class TestPhaseProfiler:
    def test_phase_context_accumulates(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            pass
        with prof.phase("a"):
            pass
        assert prof.calls("a") == 2
        assert prof.elapsed("a") >= 0.0
        assert prof.total() == pytest.approx(prof.elapsed("a"))

    def test_add_direct(self):
        prof = PhaseProfiler()
        prof.add("x", 0.25, calls=3)
        prof.add("x", 0.75)
        assert prof.elapsed("x") == 1.0
        assert prof.calls("x") == 4

    def test_wrap_iter_counts_items(self):
        prof = PhaseProfiler()
        assert list(prof.wrap_iter("gen", iter(range(5)))) == list(range(5))
        assert prof.calls("gen") == 5

    def test_phases_sorted_by_cost(self):
        prof = PhaseProfiler()
        prof.add("cheap", 0.1)
        prof.add("dear", 0.9)
        assert prof.phases() == ["dear", "cheap"]

    def test_format_table(self):
        prof = PhaseProfiler()
        prof.add("only", 0.5)
        table = prof.format_table(title="profile")
        assert "profile" in table
        assert "only" in table
        assert "100.0%" in table
