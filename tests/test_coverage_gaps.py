"""Tests for corners not covered by the per-module suites."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.core.request import Access
from repro.riscv.multicore import MultiCoreRunner
from repro.riscv.programs import DATA_BASE, vector_add
from repro.workloads import get_workload


class TestSharedL2:
    def cfg(self, private):
        return HierarchyConfig(
            num_cores=2,
            l1_size=4 * 1024,
            l1_assoc=2,
            l2_size=16 * 1024,
            l2_assoc=4,
            l2_private=private,
            llc_size=64 * 1024,
            llc_assoc=8,
        )

    def test_shared_l2_filters_cross_core_reuse(self):
        """With a shared L2, core 1's access to a line core 0 fetched
        hits in L2; with private L2s it must fall through to the LLC."""
        shared = CacheHierarchy(self.cfg(private=False))
        shared.access(Access(addr=0x9000, size=8, thread_id=0))
        shared.access(Access(addr=0x9000, size=8, thread_id=1))
        assert shared.l2[0] is shared.l2[1]
        assert shared.llc.stats.accesses == 1  # only the first miss

        private = CacheHierarchy(self.cfg(private=True))
        private.access(Access(addr=0x9000, size=8, thread_id=0))
        private.access(Access(addr=0x9000, size=8, thread_id=1))
        assert private.l2[0] is not private.l2[1]
        assert private.llc.stats.accesses == 2  # both reach the LLC

    def test_shared_l2_miss_rates_not_double_counted(self):
        h = CacheHierarchy(self.cfg(private=False))
        for i in range(100):
            h.access(Access(addr=i * 4096, size=8, thread_id=i % 2))
        rates = h.miss_rates()
        assert 0 < rates["l2"] <= 1.0

    def test_fill_latency_validation(self):
        with pytest.raises(ValueError):
            HierarchyConfig(llc_fill_latency=-1)


class TestSharedMemoryMulticore:
    def test_two_harts_share_one_memory(self):
        """With shared memory, hart 1 reads what hart 0 wrote -- here
        both kernels use the same data region, so the second to finish
        overwrites, and both verify against the same final contents."""
        k0, k1 = vector_add(32), vector_add(32)
        runner = MultiCoreRunner([k0, k1], shared_memory=True)
        results = runner.run()
        assert runner.cores[0].memory is runner.cores[1].memory
        # Same inputs, same kernel: both verify on the shared state.
        assert all(r.verified for r in results)
        # The shared input array holds the kernel's setup data.
        assert runner.cores[1].memory.read_int(DATA_BASE + 8, 8) == 3  # a[1]=1*3


class TestWorkloadBurst:
    def test_burst_interleaving_changes_order_not_content(self):
        w1 = get_workload("STREAM", num_threads=4, seed=2)
        w2 = get_workload("STREAM", num_threads=4, seed=2)
        fine = [(a.thread_id, a.addr) for a in w1.accesses(2000, burst=1)]
        coarse = [(a.thread_id, a.addr) for a in w2.accesses(2000, burst=8)]
        assert sorted(fine) == sorted(coarse)
        assert fine != coarse

    def test_burst_validation(self):
        w = get_workload("STREAM", num_threads=2, seed=0)
        with pytest.raises(ValueError):
            list(w.accesses(100, burst=0))


class TestStatsSnapshots:
    def test_coalescer_stats_zero_division_safe(self):
        from repro.core.coalescer import MemoryCoalescer
        from repro.core.config import CoalescerConfig

        s = MemoryCoalescer(CoalescerConfig(), service_time=10).stats()
        assert s.coalescing_efficiency == 0.0
        assert s.dmc_latency_ns == 0.0
        assert s.crq_fill_ns == 0.0
        assert s.mean_coalescer_latency_ns == 0.0

    def test_hmc_stats_zero_division_safe(self):
        from repro.hmc.device import HMCDevice

        s = HMCDevice().stats
        assert s.bandwidth_efficiency == 0.0
        assert s.payload_efficiency == 0.0
        assert s.mean_latency_ns == 0.0
        assert s.row_hit_rate == 0.0

    def test_vault_stats_zero_division_safe(self):
        from repro.hmc.timing import HMCTimingConfig
        from repro.hmc.vault import Vault

        assert Vault(0, HMCTimingConfig()).stats.row_hit_rate == 0.0

    def test_tracer_stats_zero_division_safe(self):
        from repro.cache.tracer import TracerStats

        assert TracerStats().miss_fraction == 0.0
