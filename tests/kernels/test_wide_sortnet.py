"""Differential tests for the wide and two-phase sorter paths.

Three contracts, each pinned against an independent specification:

* **Width scaling.**  The batched vector walk must equal the object
  engine's keyed compare-exchange loop at every supported window width
  (16..128), duplicates and padded partial flushes included -- the
  same contract :mod:`test_vector_sortnet` pins at narrow widths.

* **Schedule decomposition.**  The first log2(m) merge stages of the
  n-wide Batcher schedule are k = n/m *independent* m-wide Batcher
  sorts on aligned blocks: same comparators, same within-block firing
  order.  This is the structural fact that makes the two-phase
  architecture functionally identical to the single-phase one, so it
  is pinned directly on the comparator lists.

* **Two-phase equivalence.**  The presort + merge-tree evaluation
  path (``VectorSortNetwork(presort_width=m)``) must produce
  bit-identical permutation matrices to the generic full-schedule
  walk for every input, including ties and short sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import INVALID_KEY
from repro.core.sorting import (
    compiled_network,
    two_phase_presort_width,
)
from repro.kernels.sortnet import VectorSortNetwork

WIDTHS = (16, 32, 64, 128)
_NETS = {w: compiled_network(w) for w in WIDTHS}
_VSNS = {w: VectorSortNetwork(_NETS[w]) for w in WIDTHS}
_TWO_PHASE = {
    w: VectorSortNetwork(_NETS[w], presort_width=two_phase_presort_width(w))
    for w in WIDTHS
}

#: Small alphabet so hypothesis hits duplicate keys constantly -- the
#: regime where argsort would diverge from the comparator walk.
_keys = st.integers(min_value=0, max_value=9)


def _object_permutation(width: int, keys: list[int]) -> list[int]:
    """The object engine's padded keyed walk, as a permutation."""
    keyed = [(keys[j], j) for j in range(len(keys))]
    keyed += [(INVALID_KEY, -1)] * (width - len(keys))
    out = _NETS[width].apply_items(keyed, key=lambda kv: kv[0])
    return [j for _, j in out if j >= 0]


def _padded_matrix(width: int, sequences: list[list[int]]) -> np.ndarray:
    mat = np.full((len(sequences), width), INVALID_KEY, dtype=np.int64)
    for g, seq in enumerate(sequences):
        mat[g, : len(seq)] = seq
    return mat


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_wide_vector_walk_matches_object_walk(data):
    width = data.draw(st.sampled_from(WIDTHS))
    sequences = data.draw(
        st.lists(
            st.lists(_keys, min_size=0, max_size=width),
            min_size=1,
            max_size=6,
        )
    )
    perms = _VSNS[width].permutations(_padded_matrix(width, sequences))
    for g, seq in enumerate(sequences):
        assert perms[g, : len(seq)].tolist() == _object_permutation(width, seq)
        # Padding slots hold exactly the invalid input positions.
        assert sorted(perms[g, len(seq) :].tolist()) == list(
            range(len(seq), width)
        )


@pytest.mark.parametrize("width", WIDTHS)
def test_leading_stages_decompose_into_aligned_presorts(width):
    m = two_phase_presort_width(width)
    presort = compiled_network(m)
    wide = _NETS[width]
    # Per (stage, step): the n-wide comparators are exactly the m-wide
    # comparators replicated across every aligned m-block.
    for s in range(presort.num_stages):
        assert len(wide.stages[s]) == len(presort.stages[s])
        for wide_step, small_step in zip(wide.stages[s], presort.stages[s]):
            expected = {
                (lo + base, hi + base)
                for base in range(0, width, m)
                for lo, hi in small_step
            }
            assert set(wide_step) == expected
            # ... and every leading-stage comparator is block-confined.
            for lo, hi in wide_step:
                assert lo // m == hi // m


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_two_phase_permutations_equal_single_phase(data):
    width = data.draw(st.sampled_from(WIDTHS))
    sequences = data.draw(
        st.lists(
            st.lists(_keys, min_size=0, max_size=width),
            min_size=1,
            max_size=6,
        )
    )
    mat = _padded_matrix(width, sequences)
    single = _VSNS[width].permutations(mat)
    two = _TWO_PHASE[width].permutations(mat)
    assert np.array_equal(single, two)


@pytest.mark.parametrize("width", WIDTHS)
def test_two_phase_all_duplicates_and_full_width(width):
    # Worst tie density (every key equal) and exact-width sequences:
    # the permutation must be the identity under both paths.
    mat = np.zeros((3, width), dtype=np.int64)
    single = _VSNS[width].permutations(mat)
    two = _TWO_PHASE[width].permutations(mat)
    assert np.array_equal(single, two)
    assert np.array_equal(two, np.tile(np.arange(width), (3, 1)))


@pytest.mark.parametrize("width", WIDTHS)
def test_two_phase_sorts_reversed_full_sequences(width):
    mat = np.arange(width, dtype=np.int64)[::-1].reshape(1, -1).copy()
    perm = _TWO_PHASE[width].permutations(mat)
    sorted_keys = np.take_along_axis(mat, perm, axis=1)
    assert sorted_keys[0].tolist() == sorted(range(width))


def test_stage_prefix_requests_still_use_generic_walk():
    # Explicit ``stages=`` prefixes bypass the two-phase split (the
    # split is only valid for the full schedule); both objects must
    # agree with each other there too.
    width = 64
    rng = np.random.default_rng(7)
    mat = rng.integers(0, 9, size=(4, width), dtype=np.int64)
    for stages in (0, 2, 4, _NETS[width].num_stages):
        assert np.array_equal(
            _TWO_PHASE[width].permutations(mat, stages=stages),
            _VSNS[width].permutations(mat, stages=stages),
        )


@pytest.mark.parametrize(
    "presort_width", [0, 1, 3, 5, 64, 128, 48]
)
def test_invalid_presort_widths_rejected(presort_width):
    with pytest.raises(ValueError):
        VectorSortNetwork(_NETS[64], presort_width=presort_width)
