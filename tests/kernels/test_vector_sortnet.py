"""Differential tests: VectorSortNetwork vs the comparator walk.

The vector sorter's contract is *permutation equality* with the object
engine's keyed compare-exchange loop -- not merely sorted output.  The
network is not a stable sort (a comparator spanning other wires can
reorder equal keys), so the only correct specification for duplicate
keys is the comparator schedule itself; these tests pin the batched
NumPy execution against :meth:`OddEvenMergesortNetwork.apply_items`
and :meth:`~OddEvenMergesortNetwork.apply_prefix_stages` directly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import INVALID_KEY
from repro.core.sorting import OddEvenMergesortNetwork
from repro.kernels.sortnet import VectorSortNetwork

WIDTHS = (4, 8, 16)
_NETS = {w: OddEvenMergesortNetwork(w) for w in WIDTHS}
_VSNS = {w: VectorSortNetwork(_NETS[w]) for w in WIDTHS}

#: Small alphabet so hypothesis hits duplicate keys constantly -- the
#: regime where argsort would diverge from the comparator walk.
_keys = st.integers(min_value=0, max_value=9)


def _object_permutation(width: int, keys: list[int]) -> list[int]:
    """The object engine's padded keyed walk, as a permutation."""
    keyed = [(keys[j], j) for j in range(len(keys))]
    keyed += [(INVALID_KEY, -1)] * (width - len(keys))
    out = _NETS[width].apply_items(keyed, key=lambda kv: kv[0])
    return [j for _, j in out if j >= 0]


def _padded_matrix(width: int, sequences: list[list[int]]) -> np.ndarray:
    mat = np.full((len(sequences), width), INVALID_KEY, dtype=np.int64)
    for g, seq in enumerate(sequences):
        mat[g, : len(seq)] = seq
    return mat


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_sequence_permutation_matches_object_walk(data):
    width = data.draw(st.sampled_from(WIDTHS))
    keys = data.draw(st.lists(_keys, min_size=0, max_size=width))
    assert _VSNS[width].sequence_permutation(keys) == _object_permutation(
        width, keys
    )


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_batched_permutations_match_object_walk(data):
    width = data.draw(st.sampled_from(WIDTHS))
    sequences = data.draw(
        st.lists(
            st.lists(_keys, min_size=0, max_size=width),
            min_size=1,
            max_size=12,
        )
    )
    perms = _VSNS[width].permutations(_padded_matrix(width, sequences))
    for g, seq in enumerate(sequences):
        assert perms[g, : len(seq)].tolist() == _object_permutation(width, seq)
        # Padding keys keep their relative order behind the valid slots.
        assert sorted(perms[g, len(seq) :].tolist()) == list(
            range(len(seq), width)
        )


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_stage_prefix_matches_apply_prefix_stages(data):
    width = data.draw(st.sampled_from(WIDTHS))
    net = _NETS[width]
    stages = data.draw(st.integers(0, net.num_stages))
    rows = data.draw(
        st.lists(
            st.lists(_keys, min_size=width, max_size=width),
            min_size=1,
            max_size=8,
        )
    )
    mat = np.asarray(rows, dtype=np.int64)
    perms = _VSNS[width].permutations(mat, stages=stages)
    sorted_keys = np.take_along_axis(mat, perms, axis=1)
    for r, row in enumerate(rows):
        assert sorted_keys[r].tolist() == net.apply_prefix_stages(row, stages)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_full_schedule_equals_stage_select_prefix_on_padded_rows(data):
    """The property that lets batched replay skip stage select entirely."""
    width = data.draw(st.sampled_from(WIDTHS))
    net = _NETS[width]
    keys = data.draw(st.lists(_keys, min_size=1, max_size=width))
    mat = _padded_matrix(width, [keys])
    full = _VSNS[width].permutations(mat)[0, : len(keys)]
    prefix = _VSNS[width].permutations(
        mat, stages=net.required_stages(len(keys))
    )[0, : len(keys)]
    assert full.tolist() == prefix.tolist()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_sort_keys_yields_the_sorted_multiset(data):
    width = data.draw(st.sampled_from(WIDTHS))
    rows = data.draw(
        st.lists(
            st.lists(_keys, min_size=width, max_size=width),
            min_size=1,
            max_size=8,
        )
    )
    mat = np.asarray(rows, dtype=np.int64)
    out = _VSNS[width].sort_keys(mat)
    assert np.array_equal(out, np.sort(mat, axis=1))


def test_shape_and_length_validation():
    vsn = _VSNS[4]
    with pytest.raises(ValueError):
        vsn.permutations(np.zeros((2, 5), dtype=np.int64))
    with pytest.raises(ValueError):
        vsn.permutations(np.zeros(4, dtype=np.int64))
    with pytest.raises(ValueError):
        vsn.sequence_permutation([1, 2, 3, 4, 5])
