"""Engine parity: object and vector engines are bit-identical.

The kernel engine contract (``docs/architecture.md``): engine choice
is an execution concern that must never change a result.  These tests
compare full-run :func:`result_digest` values -- the serialized result
plus every metric value -- across engines, per coalescer config, and
across the trace store in both capture/replay directions, plus raw
trace-buffer bytes for the capture kernel on its own.
"""

from dataclasses import replace

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.tracer import MemoryTracer
from repro.core.request import Access, RequestType
from repro.kernels import resolve_engine
from repro.kernels.capture import batch_capture, supports_vector_capture
from repro.perf.digest import result_digest
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.sim.sweep import FIGURE_CONFIGS
from repro.trace import TraceBuffer, TraceStore
from repro.workloads import get_workload
from repro.workloads.base import Workload


def _object_capture(workload, platform):
    """The live path's capture: a tracer run teed into a buffer."""
    hierarchy = CacheHierarchy(platform.hierarchy)
    tracer = MemoryTracer(
        hierarchy, cycles_per_access=platform.cycles_per_access
    )
    buffer = TraceBuffer()
    for record in tracer.trace(workload.accesses(platform.accesses)):
        buffer.append_record(record)
    return buffer, tracer.stats.cpu_accesses, hierarchy.secondary_misses


@pytest.mark.parametrize("config", tuple(FIGURE_CONFIGS))
@pytest.mark.parametrize("bench", ("SG", "SparseLU"))
def test_engine_digest_parity(bench, config):
    platform = PlatformConfig(accesses=1200)
    coalescer = FIGURE_CONFIGS[config]
    obj = run_benchmark(
        bench, platform=platform, coalescer=coalescer, engine="object"
    )
    vec = run_benchmark(
        bench, platform=platform, coalescer=coalescer, engine="vector"
    )
    assert result_digest(obj) == result_digest(vec)


@pytest.mark.parametrize("bench", ("SG", "STREAM", "SparseLU"))
def test_batch_capture_buffer_is_byte_identical(bench):
    platform = PlatformConfig(accesses=1500)
    workload = get_workload(
        bench, num_threads=platform.num_threads, seed=platform.seed
    )
    ref, ref_accesses, ref_secondary = _object_capture(workload, platform)
    vec, vec_accesses, vec_secondary = batch_capture(workload, platform)
    assert vec_accesses == ref_accesses
    assert vec_secondary == ref_secondary
    assert vec.to_bytes() == ref.to_bytes()


class _FencedStrides(Workload):
    """Custom iterator with fences: exercises the generic column path."""

    name = "FencedStrides"

    def thread_phases(self, tid, n, rng):  # pragma: no cover - unused
        raise NotImplementedError

    def accesses(self, total_accesses, *, burst: int = 1):
        for i in range(total_accesses):
            if i % 9 == 8:
                yield Access(addr=0, size=0, rtype=RequestType.FENCE)
            else:
                yield Access(
                    addr=64 * ((i * 37) % 211) + (i % 48),
                    size=8 + (i % 3) * 16,
                    rtype=RequestType.STORE if i % 3 == 1 else RequestType.LOAD,
                    thread_id=i % self.num_threads,
                )


def test_batch_capture_handles_custom_workloads_with_fences():
    platform = PlatformConfig(accesses=800)
    workload = _FencedStrides(num_threads=platform.num_threads)
    ref, ref_accesses, ref_secondary = _object_capture(workload, platform)
    vec, vec_accesses, vec_secondary = batch_capture(workload, platform)
    assert vec_accesses == ref_accesses
    assert vec_secondary == ref_secondary
    assert vec.to_bytes() == ref.to_bytes()


@pytest.mark.parametrize(
    "capture_engine,replay_engine", [("object", "vector"), ("vector", "object")]
)
def test_store_interplay_across_engines(tmp_path, capture_engine, replay_engine):
    """A trace captured by either engine replays bit-exactly on the other."""
    platform = PlatformConfig(accesses=900)
    store = TraceStore(tmp_path)
    captured = run_benchmark(
        "FT", platform=platform, trace_store=store, engine=capture_engine
    )
    replayed = run_benchmark(
        "FT", platform=platform, trace_store=store, engine=replay_engine
    )
    assert store.misses == 1 and store.hits == 1
    assert result_digest(captured) == result_digest(replayed)


def test_prefetch_platforms_fall_back_to_the_object_path():
    platform = PlatformConfig(accesses=900)
    platform = replace(
        platform, hierarchy=replace(platform.hierarchy, llc_prefetch=True)
    )
    assert not supports_vector_capture(platform)
    obj = run_benchmark("STREAM", platform=platform, engine="object")
    vec = run_benchmark("STREAM", platform=platform, engine="vector")
    assert result_digest(obj) == result_digest(vec)


def test_resolve_engine_contract():
    assert resolve_engine(None) in ("object", "vector")
    assert resolve_engine("object") == "object"
    assert resolve_engine("vector") == "vector"
    with pytest.raises(ValueError):
        resolve_engine("gpu")
