"""Differential suite for the batched HMC back-end timing kernel.

Two layers of properties:

* **Unit differential** -- random packet streams (Hypothesis owns the
  randomness) run through the object engine's ``service_time`` closure
  on one device and through :class:`BatchedHMCBackend.service` on
  another; per-packet completion cycles, every stats dataclass, bank
  activation counts and the flattened metrics registry must be
  bit-identical after the deferred flush.  Streams cover row-hit/miss
  boundaries (same-bank row ping-pong), vault-queue saturation (every
  packet on one vault) and both page policies; ``replay_batch`` -- the
  feedback-free whole-batch NumPy pass -- must advance the timing
  state exactly like repeated ``service`` calls.

* **End-to-end differential** -- scripted access streams (with fences
  pinned next to flush boundaries) run under the object and vector
  engines; the vector run must engage the HMC back end (no silent
  delegation) and produce a bit-identical :func:`result_digest`.  A
  forced verification miss checks the fallback contract: the run falls
  back to the object engine whole, the miss is counted, and the result
  is still bit-identical.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CoalescerConfig
from repro.core.request import Access, CoalescedRequest, RequestType
from repro.hmc.device import HMCDevice
from repro.hmc.timing import HMCTimingConfig
from repro.kernels import hmc as hk
from repro.kernels.hmc import (
    BatchedHMCBackend,
    HMCKernelError,
    hmc_constant_tables,
)
from repro.obs import MetricsRegistry
from repro.perf.digest import result_digest
from repro.sim.driver import PlatformConfig, _make_service_time, run_benchmark
from repro.workloads.base import Workload

_CYCLE_NS = 1.0

#: Small-capacity config so generated addresses stay dense per bank.
_OPEN = HMCTimingConfig()
_CLOSED = replace(_OPEN, page_policy="closed")


def _flat(registry: MetricsRegistry) -> dict:
    out: dict = {}
    for metric in registry.metrics():
        if metric.kind == "histogram":
            out[metric.name] = sorted(
                (
                    tuple(sorted(labels.items())),
                    series.count,
                    series.sum,
                    tuple(series.counts),
                )
                for labels, series in metric.samples()
            )
        else:
            out[metric.name] = sorted(
                (tuple(sorted(labels.items())), value)
                for labels, value in metric.samples()
            )
    return out


# -- packet stream strategies ------------------------------------------------
#
# Rows are (block, line offset, num_lines selector, write, cycle gap);
# addresses are line-aligned and clamped so no packet crosses its 256 B
# block (the object engine's envelope).

_ROWS = st.lists(
    st.tuples(
        st.integers(0, 4095),  # block index (spans vaults, banks, rows)
        st.integers(0, 3),  # line offset within the block
        st.sampled_from((1, 2, 4)),  # lines -> 64/128/256 B payloads
        st.booleans(),  # store?
        st.integers(0, 6),  # issue-cycle gap
    ),
    min_size=30,
    max_size=220,
)


def _requests(rows, *, block_of=None):
    """Materialize (request, issue_cycle) pairs from strategy rows."""
    out = []
    at = 0
    for block, off, lines, write, gap in rows:
        if block_of is not None:
            block = block_of(block)
        if off + lines > 4:
            off = 4 - lines
        at += gap
        out.append(
            (
                CoalescedRequest(
                    addr=block * 256 + off * 64,
                    num_lines=lines,
                    rtype=RequestType.STORE if write else RequestType.LOAD,
                ),
                at,
            )
        )
    return out


def _object_run(config, stream):
    """Drive the object engine; returns (cycles, device)."""
    device = HMCDevice(config, registry=MetricsRegistry())
    device.defer_metrics()
    service_time = _make_service_time(device, _CYCLE_NS)
    cycles = [at + service_time(req, at) for req, at in stream]
    device.apply_deferred_metrics()
    return cycles, device


def _backend_run(config, stream):
    """Drive the batched back end; returns (cycles, device, backend)."""
    device = HMCDevice(config, registry=MetricsRegistry())
    device.defer_metrics()
    backend = BatchedHMCBackend(
        device, _CYCLE_NS, hmc_constant_tables(config, _CYCLE_NS)
    )
    cycles = [backend.service(req, at) for req, at in stream]
    backend.finalize()
    device.apply_deferred_metrics()
    return cycles, device, backend


def _assert_devices_match(obj: HMCDevice, vec: HMCDevice):
    assert vec.stats == obj.stats
    assert vec.link.stats == obj.link.stats
    assert vec.link.free_at_ns == obj.link.free_at_ns
    for ov, vv in zip(obj.vaults, vec.vaults):
        assert vv.stats == ov.stats
        assert vv.free_at_ns == ov.free_at_ns
        for ob, vb in zip(ov.banks, vv.banks):
            assert vb.open_row == ob.open_row
            assert vb.activations == ob.activations
    assert _flat(vec.registry) == _flat(obj.registry)


@settings(max_examples=40, deadline=None)
@given(rows=_ROWS)
def test_random_streams_match_object_engine(rows):
    stream = _requests(rows)
    obj_cycles, obj_dev = _object_run(_OPEN, stream)
    vec_cycles, vec_dev, _ = _backend_run(_OPEN, stream)
    assert vec_cycles == obj_cycles
    _assert_devices_match(obj_dev, vec_dev)


@settings(max_examples=25, deadline=None)
@given(rows=_ROWS)
def test_closed_page_matches_object_engine(rows):
    stream = _requests(rows)
    obj_cycles, obj_dev = _object_run(_CLOSED, stream)
    vec_cycles, vec_dev, _ = _backend_run(_CLOSED, stream)
    assert vec_cycles == obj_cycles
    _assert_devices_match(obj_dev, vec_dev)


@settings(max_examples=25, deadline=None)
@given(rows=_ROWS, rowbit=st.integers(0, 3))
def test_row_boundary_ping_pong_matches(rows, rowbit):
    """Same bank, two rows: hit/miss boundaries on every toggle.

    Blocks are pinned to bank 0 of vault 0 and alternate between two
    rows selected by one strategy-chosen block bit, so consecutive
    packets exercise exactly the open-row transitions.
    """
    num_vaults = _OPEN.num_vaults
    banks = _OPEN.banks_per_vault
    row_blocks = num_vaults * banks * max(1, _OPEN.row_bytes // _OPEN.block_bytes)
    stream = _requests(
        rows, block_of=lambda b: ((b >> rowbit) & 1) * row_blocks
    )
    obj_cycles, obj_dev = _object_run(_OPEN, stream)
    vec_cycles, vec_dev, _ = _backend_run(_OPEN, stream)
    assert vec_cycles == obj_cycles
    _assert_devices_match(obj_dev, vec_dev)


@settings(max_examples=25, deadline=None)
@given(rows=_ROWS)
def test_vault_queue_saturation_matches(rows):
    """Every packet on vault 0: the FIFO backlog dominates timing."""
    num_vaults = _OPEN.num_vaults
    stream = _requests(rows, block_of=lambda b: (b // num_vaults) * num_vaults)
    obj_cycles, obj_dev = _object_run(_OPEN, stream)
    vec_cycles, vec_dev, _ = _backend_run(_OPEN, stream)
    assert vec_cycles == obj_cycles
    assert obj_dev.vaults[0].stats.requests == len(stream)
    _assert_devices_match(obj_dev, vec_dev)


@settings(max_examples=20, deadline=None)
@given(rows=_ROWS, split=st.integers(0, 220), closed=st.booleans())
def test_replay_batch_advances_state_like_service(rows, split, closed):
    """The whole-batch NumPy pass is timing-equivalent to service().

    A prefix runs through ``service`` on both backends (building up
    arbitrary link/vault/bank state), then the suffix runs per-packet
    on one and as a single ``replay_batch`` on the other: completion
    cycles and the resulting timing state must be identical.
    """
    config = _CLOSED if closed else _OPEN
    stream = _requests(rows)
    split = min(split, len(stream))
    _, _, scalar = _backend_run(config, stream[:split])
    _, _, batched = _backend_run(config, stream[:split])
    tail = stream[split:]
    scalar_cycles = [scalar.service(req, at) for req, at in tail]
    batch_cycles = batched.replay_batch(
        [req.addr for req, _ in tail],
        [req.num_lines * 64 for req, _ in tail],
        [1 if req.rtype is RequestType.STORE else 0 for req, _ in tail],
        [at for _, at in tail],
    )
    assert batch_cycles == scalar_cycles
    assert batched._vault_free == scalar._vault_free
    assert batched._bank_rows == scalar._bank_rows
    assert batched._acts == scalar._acts


def test_envelope_violation_raises_kernel_error():
    device = HMCDevice(_OPEN, registry=MetricsRegistry())
    device.defer_metrics()
    backend = BatchedHMCBackend(
        device, _CYCLE_NS, hmc_constant_tables(_OPEN, _CYCLE_NS)
    )
    bad = CoalescedRequest(
        addr=_OPEN.capacity_bytes, num_lines=1, rtype=RequestType.LOAD
    )
    before = hk.kernel_counters()["fallbacks"]
    try:
        backend.service(bad, 0)
    except HMCKernelError:
        pass
    else:  # pragma: no cover - the raise is the contract
        raise AssertionError("expected HMCKernelError")
    assert hk.kernel_counters()["fallbacks"] == before + 1


def test_warm_device_delegates():
    """attach_backend refuses anything but a pristine deferred stack."""
    from repro.kernels.coalesce import BatchedCoalescer  # noqa: F401

    device = HMCDevice(_OPEN, registry=MetricsRegistry())
    device.service(0, 64)  # warm it up
    device.defer_metrics()
    fn = _make_service_time(device, _CYCLE_NS)

    class _Host:
        _service_time = staticmethod(fn)

    before = hk.kernel_counters()["delegated"]
    assert hk.attach_backend(_Host()) is None
    assert hk.kernel_counters()["delegated"] == before + 1


# -- end-to-end: scripted workloads through the replay driver ----------------


class _Scripted(Workload):
    """Replays a fixed access list (hypothesis owns the randomness)."""

    name = "ScriptedHMCDifferential"

    def __init__(self, events, num_threads: int = 4):
        super().__init__(num_threads=num_threads)
        self._events = events

    def thread_phases(self, tid, n, rng):  # pragma: no cover - unused
        raise NotImplementedError

    def accesses(self, total_accesses: int, *, burst: int = 1):
        yield from self._events[:total_accesses]


def _platform(accesses: int) -> PlatformConfig:
    base = PlatformConfig(accesses=accesses)
    return replace(
        base,
        hierarchy=replace(
            base.hierarchy, l1_size=1024, l2_size=2048, llc_size=4096
        ),
        coalescer=CoalescerConfig(),
    )


def _events(rows, fence_offset=None):
    out = []
    for fence_sel, line, off, size, rtype_sel, tid in rows:
        if fence_sel == 9 and fence_offset is None:
            out.append(Access(addr=0, size=0, rtype=RequestType.FENCE))
        else:
            out.append(
                Access(
                    addr=line * 64 + off * 16,
                    size=size,
                    rtype=(
                        RequestType.STORE
                        if rtype_sel == 2
                        else RequestType.LOAD
                    ),
                    thread_id=tid,
                )
            )
    if fence_offset is not None:
        width = CoalescerConfig().sorter_width
        for pos in range(width + fence_offset, len(out), width):
            out[pos] = Access(addr=0, size=0, rtype=RequestType.FENCE)
    return out


_EVENT_ROWS = st.lists(
    st.tuples(
        st.integers(0, 9),
        st.integers(0, 63),
        st.integers(0, 3),
        st.sampled_from((1, 4, 8, 16, 32)),
        st.integers(0, 2),
        st.integers(0, 3),
    ),
    min_size=100,
    max_size=240,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=_EVENT_ROWS, fence_offset=st.none() | st.integers(-1, 1))
def test_end_to_end_engages_backend_and_matches(rows, fence_offset):
    """Vector replay with the HMC back end is digest-identical.

    ``fence_offset`` (when drawn) pins fences one row before, on, or
    after flush-width multiples, so verification fires on the packet
    after each fence drain -- the windows where stale timing state
    would surface first.
    """
    events = _events(rows, fence_offset)
    workload = _Scripted(events)
    platform = _platform(len(events))
    obj = run_benchmark(workload, platform=platform, engine="object")
    before = hk.kernel_counters()
    vec = run_benchmark(workload, platform=platform, engine="vector")
    after = hk.kernel_counters()
    assert after["engaged"] == before["engaged"] + 1
    assert after["fallbacks"] == before["fallbacks"]
    assert result_digest(vec) == result_digest(obj)


def test_verification_miss_falls_back_whole_run(monkeypatch):
    """A shadow mismatch discards the run and re-runs the object engine."""
    rows = [(i % 9, (i * 13) % 64, i % 4, 8, i % 3, i % 4) for i in range(240)]
    events = _events(rows)
    workload = _Scripted(events)
    platform = _platform(len(events))
    obj = run_benchmark(workload, platform=platform, engine="object")

    monkeypatch.setattr(
        BatchedHMCBackend,
        "_shadow_service",
        lambda self, *args: (-1.0, False, -1),
    )
    before = hk.kernel_counters()
    vec = run_benchmark(workload, platform=platform, engine="vector")
    after = hk.kernel_counters()
    assert after["fallbacks"] == before["fallbacks"] + 1
    assert (
        after["fallback_reasons"]["hmc-verify-miss"]
        == before["fallback_reasons"].get("hmc-verify-miss", 0) + 1
    )
    assert result_digest(vec) == result_digest(obj)
