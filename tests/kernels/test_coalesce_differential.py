"""Differential suite for the batched second-phase coalescing kernel.

Property-based: random flush batches (scripted access streams mixing
loads, stores, duplicate lines and fences) run end-to-end under the
object engine and the kernel engine, and the two results must be
bit-identical -- compared both as full metric dictionaries and as
:func:`result_digest` values, the same witness the parity gates use.

The platform uses deliberately tiny caches so short streams still
produce dense LLC miss traffic, and the coalescer configs cover the
regimes the merge-plan join has to get right:

* the stock ``combined`` config (DMC + dynamic MSHRs);
* a 4-MSHR file, where allocation pressure forces merge-while-full
  decisions and CRQ backpressure on nearly every flush;
* fences pinned adjacent to sorter-width flush boundaries, where the
  fence marker lands first/last in a CRQ batch and the probe-filter
  bookkeeping is easiest to get wrong.

A forced mid-run verification miss checks the fallback contract:
the partially-mutated stack is discarded, the object engine re-runs,
and the result is still bit-identical (one fallback counter tick).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CoalescerConfig
from repro.core.request import Access, RequestType
from repro.kernels.coalesce import kernel_counters
from repro.perf.digest import result_digest
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.workloads.base import Workload

#: Shrunk geometry: 2 L1 sets / 4 L2 sets / 4 LLC sets, so a 64-line
#: footprint thrashes every level and the coalescer sees real traffic.
_TINY_HIERARCHY = {"l1_size": 1024, "l2_size": 2048, "llc_size": 4096}

_COMBINED = CoalescerConfig()
#: Merge-while-full regime: the MSHR file fills within one flush.
_TINY_MSHRS = replace(_COMBINED, num_mshrs=4, crq_depth=4)


def _platform(accesses: int, coalescer: CoalescerConfig) -> PlatformConfig:
    base = PlatformConfig(accesses=accesses)
    return replace(
        base,
        hierarchy=replace(base.hierarchy, **_TINY_HIERARCHY),
        coalescer=coalescer,
    )


class _Scripted(Workload):
    """Replays a fixed access list (hypothesis owns the randomness)."""

    name = "ScriptedDifferential"

    def __init__(self, events: list[Access], num_threads: int = 4):
        super().__init__(num_threads=num_threads)
        self._events = events

    def thread_phases(self, tid, n, rng):  # pragma: no cover - unused
        raise NotImplementedError

    def accesses(self, total_accesses: int, *, burst: int = 1):
        yield from self._events[:total_accesses]


#: Raw event rows: (fence selector, line, 16 B offset, size, type, thread).
_EVENT_ROWS = st.lists(
    st.tuples(
        st.integers(0, 9),  # 9 -> fence (~10% of rows)
        st.integers(0, 63),  # cache line (dense: forces overlap/merge)
        st.integers(0, 3),  # 16 B-granule offset within the line
        st.sampled_from((1, 4, 8, 16, 32)),
        st.integers(0, 2),  # 2 -> store
        st.integers(0, 3),  # issuing thread
    ),
    min_size=100,
    max_size=260,
)


def _to_accesses(rows) -> list[Access]:
    out = []
    for fence_sel, line, off, size, rtype_sel, tid in rows:
        if fence_sel == 9:
            out.append(Access(addr=0, size=0, rtype=RequestType.FENCE))
        else:
            out.append(
                Access(
                    addr=line * 64 + off * 16,
                    size=size,
                    rtype=(
                        RequestType.STORE
                        if rtype_sel == 2
                        else RequestType.LOAD
                    ),
                    thread_id=tid,
                )
            )
    return out


def _assert_engines_match(events: list[Access], coalescer: CoalescerConfig):
    workload = _Scripted(events)
    platform = _platform(len(events), coalescer)
    obj = run_benchmark(workload, platform=platform, engine="object")
    before = kernel_counters()
    vec = run_benchmark(workload, platform=platform, engine="vector")
    after = kernel_counters()
    # The batched kernel must actually be the thing under test: the
    # stock component stack supports it, so the run engages it (no
    # silent delegation) and verification never misses.
    assert after["engaged"] == before["engaged"] + 1
    assert after["fallbacks"] == before["fallbacks"]
    assert vec.metrics.as_flat_dict() == obj.metrics.as_flat_dict()
    assert result_digest(vec) == result_digest(obj)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=_EVENT_ROWS)
def test_random_flush_batches_match_object_engine(rows):
    _assert_engines_match(_to_accesses(rows), _COMBINED)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=_EVENT_ROWS)
def test_merge_while_full_matches_object_engine(rows):
    _assert_engines_match(_to_accesses(rows), _TINY_MSHRS)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=_EVENT_ROWS,
    fence_offset=st.integers(-1, 1),
)
def test_fence_adjacent_flushes_match_object_engine(rows, fence_offset):
    """Fences pinned against sorter-width flush boundaries.

    ``fence_offset`` places each fence one row before, exactly on, or
    one row after a multiple of the flush width, so the CRQ sees fence
    markers at the head, tail and middle of its batches.
    """
    width = _COMBINED.sorter_width
    events = _to_accesses(
        (row[0] % 9, *row[1:]) for row in rows  # strip random fences
    )
    for pos in range(width + fence_offset, len(events), width):
        events[pos] = Access(addr=0, size=0, rtype=RequestType.FENCE)
    _assert_engines_match(events, _COMBINED)


def test_verification_miss_falls_back_to_object_engine(monkeypatch):
    """A mid-run kernel error discards the stack and re-runs object."""
    from repro.kernels import coalesce as ck

    rows = [(i % 9, (i * 13) % 64, i % 4, 8, i % 3, i % 4) for i in range(240)]
    events = _to_accesses(rows)
    workload = _Scripted(events)
    platform = _platform(len(events), _COMBINED)
    obj = run_benchmark(workload, platform=platform, engine="object")

    def boom(self, *args, **kwargs):
        raise ck.CoalesceKernelError("forced-test-miss")

    monkeypatch.setattr(ck.BatchedCoalescer, "handle_sequence", boom)
    before = kernel_counters()
    vec = run_benchmark(workload, platform=platform, engine="vector")
    after = kernel_counters()
    assert after["fallbacks"] == before["fallbacks"] + 1
    assert (
        after["fallback_reasons"]["forced-test-miss"]
        == before["fallback_reasons"].get("forced-test-miss", 0) + 1
    )
    assert result_digest(vec) == result_digest(obj)
