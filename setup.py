"""Setuptools shim.

Kept so ``pip install -e . --no-build-isolation --no-use-pep517`` works
on environments whose setuptools lacks an integrated ``bdist_wheel``
(this sandbox has setuptools 65 and no ``wheel`` package, and no
network to fetch one).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
