#!/usr/bin/env python3
"""Quickstart: run one benchmark through the whole stack.

Runs the STREAM workload end to end -- 12 simulated cores, the cache
hierarchy, the two-phase memory coalescer, and the HMC device -- then
prints the headline metrics next to an uncoalesced baseline.

Usage::

    python examples/quickstart.py [BENCHMARK] [ACCESSES]
"""

import sys

from repro import PlatformConfig, run_benchmark
from repro.analysis.report import format_table
from repro.core.config import UNCOALESCED_CONFIG
from repro.sim.driver import runtime_improvement


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "STREAM"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 24_000

    platform = PlatformConfig(accesses=accesses)
    print(f"Running {benchmark} ({accesses} CPU accesses, 12 cores)...")

    coalesced = run_benchmark(benchmark, platform=platform)
    baseline = run_benchmark(
        benchmark, platform=platform.with_coalescer(UNCOALESCED_CONFIG)
    )

    rows = [
        ["LLC requests", baseline.coalescer.llc_requests, coalesced.coalescer.llc_requests],
        ["HMC requests", baseline.hmc.requests, coalesced.hmc.requests],
        ["coalescing efficiency", "-", f"{coalesced.coalescing_efficiency:.2%}"],
        ["bandwidth efficiency", f"{baseline.bandwidth_efficiency:.2%}", f"{coalesced.bandwidth_efficiency:.2%}"],
        ["bytes moved (KB)", baseline.transferred_bytes // 1024, coalesced.transferred_bytes // 1024],
        ["HMC row-buffer hit rate", f"{baseline.hmc.row_hit_rate:.2%}", f"{coalesced.hmc.row_hit_rate:.2%}"],
        ["memory makespan (us)", f"{baseline.memory_ns / 1e3:.1f}", f"{coalesced.memory_ns / 1e3:.1f}"],
        ["modelled runtime (us)", f"{baseline.runtime_ns / 1e3:.1f}", f"{coalesced.runtime_ns / 1e3:.1f}"],
    ]
    print()
    print(format_table(["metric", "baseline", "coalesced"], rows))
    print()
    print(
        f"runtime improvement: {runtime_improvement(baseline, coalesced):.2%} "
        "(paper average across 12 benchmarks: 13.14%)"
    )
    print("issued packet sizes:", coalesced.request_size_distribution())

    # Each result carries the run's full metrics registry (every stage
    # counter/gauge/histogram -- the `python -m repro stats` surface;
    # the catalogue is docs/metrics.md).
    flat = coalesced.metrics.as_flat_dict()
    print()
    print(f"{flat.get('sorter_sequences_total{reason=full}', 0):.0f} full / "
          f"{flat.get('sorter_sequences_total{reason=timeout}', 0):.0f} "
          f"timed-out sorter launches, "
          f"{flat['dmc_merges_total']:.0f} DMC merges, "
          f"{flat.get('mshr_outcomes_total{case=merged_full}', 0):.0f} "
          "case-A MSHR merges")
    print(f"transfer saved vs baseline: "
          f"{coalesced.transfer_bytes_saved_vs(baseline) / 1024:.0f} KB "
          f"({coalesced.control_bytes_saved_vs(baseline) / 1024:.0f} KB "
          "of it control overhead)")


if __name__ == "__main__":
    main()
