#!/usr/bin/env python3
"""Run real RV64I code and coalesce its memory trace.

This is the paper's Section 5.1 set-up in miniature: assembly kernels
execute on the functional RV64I core, a memory tracer captures every
architectural load/store, the cache hierarchy filters the stream, and
the LLC misses flow through the two-phase coalescer into the HMC
device model.

Usage::

    python examples/riscv_trace_coalescing.py [KERNEL]

Kernels: vector_add, gather, scatter, pointer_chase, spmv_csr.
"""

import sys

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.tracer import MemoryTracer
from repro.core.coalescer import MemoryCoalescer
from repro.core.config import CoalescerConfig
from repro.hmc.device import HMCDevice
from repro.riscv.cpu import RV64Core
from repro.riscv.programs import ALL_KERNELS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vector_add"
    if name not in ALL_KERNELS:
        sys.exit(f"unknown kernel {name!r}; options: {', '.join(ALL_KERNELS)}")

    # 1. Execute the kernel on the RV64I core with a trace hook.
    accesses = []
    kernel = ALL_KERNELS[name]()
    core = RV64Core(trace_hook=accesses.append)
    kernel.run(core)
    assert kernel.verify(core), "kernel produced wrong results"
    print(
        f"{name}: {core.stats.instructions} instructions, "
        f"{core.stats.loads} loads, {core.stats.stores} stores "
        f"(exit code {core.exit_code})"
    )

    # 2. Filter the access stream through an embedded-class hierarchy.
    hierarchy = CacheHierarchy(
        HierarchyConfig(
            num_cores=1,
            l1_size=4 * 1024,
            l1_assoc=2,
            l2_size=16 * 1024,
            l2_assoc=4,
            llc_size=64 * 1024,
            llc_assoc=8,
            llc_fill_latency=400,
        )
    )
    tracer = MemoryTracer(hierarchy, cycles_per_access=1.0)

    # 3. Coalesce the LLC miss stream against the HMC device.
    device = HMCDevice()
    cycle_ns = 1 / 3.3

    def service_time(pkt, cyc):
        resp = device.service(
            pkt.addr,
            pkt.size,
            is_write=pkt.is_store,
            arrive_ns=cyc * cycle_ns,
            requested_bytes=min(pkt.requested_bytes, pkt.size),
        )
        return max(1, int(resp.latency_ns / cycle_ns))

    # A single in-order hart produces misses slowly; stretch the
    # timeout so sequences still gather enough requests to sort.
    coalescer = MemoryCoalescer(
        CoalescerConfig(timeout_cycles=200), service_time=service_time
    )
    for rec in tracer.trace(iter(accesses)):
        coalescer.push(rec.request, rec.cycle)
    coalescer.flush(tracer.cycle + 1)

    stats = coalescer.stats()
    print(f"CPU accesses traced      : {tracer.stats.cpu_accesses}")
    print(f"LLC miss/writeback stream: {stats.llc_requests}")
    print(f"HMC requests issued      : {stats.hmc_requests}")
    print(f"coalescing efficiency    : {stats.coalescing_efficiency:.2%}")
    print(f"packet sizes             : {dict(sorted(device.stats.size_histogram.items()))}")
    print(f"bandwidth efficiency     : {device.stats.bandwidth_efficiency:.2%}")
    print(f"mean DMC latency         : {stats.dmc_latency_ns:.2f} ns")


if __name__ == "__main__":
    main()
