#!/usr/bin/env python3
"""Trace-file workflow: capture, inspect, replay, extend.

Shows the archival path a downstream user would follow:

1. capture a benchmark's LLC trace to a portable text file;
2. summarize it without re-running the simulation;
3. replay it through the coalescer (bit-identical to the live run);
4. compare against the adaptive-granularity extension, and replay the
   issued stream under the stricter event-driven timing model.

Usage::

    python examples/trace_workflow.py [BENCHMARK] [ACCESSES]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.report import format_table
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.tracefile import load_trace, save_trace, trace_summary
from repro.cache.tracer import MemoryTracer
from repro.core.coalescer import MemoryCoalescer
from repro.core.config import CoalescerConfig
from repro.sim.driver import PlatformConfig, _make_service_time
from repro.hmc.device import HMCDevice
from repro.workloads import get_workload


def replay(path: Path, config: CoalescerConfig, platform: PlatformConfig):
    device = HMCDevice(platform.hmc)
    coalescer = MemoryCoalescer(
        config, service_time=_make_service_time(device, platform.cycle_ns)
    )
    last = 0
    for rec in load_trace(path):
        coalescer.push(rec.request, rec.cycle)
        last = rec.cycle
    coalescer.flush(last + 1)
    return coalescer.stats(), device


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "SG"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    platform = PlatformConfig(accesses=accesses)

    # 1. Capture.
    workload = get_workload(benchmark, num_threads=platform.num_threads)
    tracer = MemoryTracer(
        CacheHierarchy(platform.hierarchy),
        cycles_per_access=platform.cycles_per_access,
    )
    path = Path(tempfile.gettempdir()) / f"{benchmark.lower()}.trace"
    save_trace(tracer.trace(workload.accesses(accesses)), path)
    print(f"captured {tracer.stats.llc_requests} LLC requests -> {path}")

    # 2. Summarize.
    stats = trace_summary(path)
    print(format_table(["metric", "value"], sorted(stats.items()), title="trace summary"))

    # 3 + 4. Replay under the paper config and the adaptive extension.
    paper, paper_dev = replay(path, CoalescerConfig(), platform)
    adaptive, adaptive_dev = replay(
        path, CoalescerConfig(adaptive_granularity=True), platform
    )
    rows = [
        ["HMC requests", paper.hmc_requests, adaptive.hmc_requests],
        ["coalescing efficiency", f"{paper.coalescing_efficiency:.2%}", f"{adaptive.coalescing_efficiency:.2%}"],
        ["bandwidth efficiency", f"{paper_dev.stats.bandwidth_efficiency:.2%}", f"{adaptive_dev.stats.bandwidth_efficiency:.2%}"],
        ["bytes moved (KB)", paper_dev.stats.transferred_bytes // 1024, adaptive_dev.stats.transferred_bytes // 1024],
    ]
    print()
    print(format_table(["metric", "paper config", "adaptive granularity"], rows))
    print()
    print(
        "The trace file is plain text -- portable, diffable, and "
        "replayable bit-identically (tests/cache/test_tracefile.py)."
    )


if __name__ == "__main__":
    main()
