#!/usr/bin/env python3
"""Tune the sorting-buffer timeout (Figure 14).

The request sorting network launches a sequence when its buffer fills
*or* when the oldest buffered request has waited ``timeout`` cycles.
Too small a timeout starves the sorter (tiny sequences, congested
pipeline); too large a timeout makes requests idle in the buffer.
This example sweeps the timeout and prints the mean coalescer latency
per benchmark, plus the coalescing efficiency trade-off.

Usage::

    python examples/timeout_tuning.py [ACCESSES]
"""

import sys

from repro.analysis.report import format_table
from repro.core.config import CoalescerConfig
from repro.sim.driver import PlatformConfig, run_benchmark
from repro.sim.experiments import fig14_timeout_sweep


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    platform = PlatformConfig(accesses=accesses)
    benchmarks = ("STREAM", "FT", "SG", "HPCG")

    data = fig14_timeout_sweep(platform=platform, benchmarks=benchmarks)
    rows = [[r[0]] + [f"{v:.1f}" for v in r[1:]] for r in data.rows]
    print(format_table(data.headers, rows, title=data.description))

    print()
    print("coalescing efficiency at each timeout (STREAM):")
    effs = []
    for timeout in (8, 12, 16, 20, 24, 28):
        cfg = CoalescerConfig(timeout_cycles=timeout)
        r = run_benchmark("STREAM", platform=platform.with_coalescer(cfg))
        effs.append((timeout, r.coalescing_efficiency))
    print(
        format_table(
            ["timeout_cycles", "coalescing_efficiency"],
            [[t, f"{e:.2%}"] for t, e in effs],
        )
    )
    print()
    print(
        "The paper's guidance (Section 5.3.3): set the timeout to about "
        "the average coalescing latency -- large enough to gather full "
        "sequences, small enough not to add buffer idle time."
    )


if __name__ == "__main__":
    main()
