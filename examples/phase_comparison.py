#!/usr/bin/env python3
"""Compare the coalescer's phases across all 12 benchmarks (Figure 8).

Runs every benchmark under four configurations -- no coalescing,
conventional MSHR-based coalescing only, the DMC unit only, and the
full two-phase coalescer -- and prints the coalescing-efficiency bars
of the paper's Figure 8.

Usage::

    python examples/phase_comparison.py [ACCESSES]
"""

import sys

from repro.analysis.report import format_bar_chart, format_table
from repro.sim.driver import PlatformConfig
from repro.sim.experiments import EvaluationSuite


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    suite = EvaluationSuite(PlatformConfig(accesses=accesses))
    data = suite.fig8_coalescing_efficiency()

    rows = [
        [name, f"{mshr:.2%}", f"{dmc:.2%}", f"{both:.2%}"]
        for name, mshr, dmc, both in data.rows
    ]
    print(format_table(data.headers, rows, title=data.description))
    print()
    print(
        format_bar_chart(
            [r[0] for r in data.rows],
            [r[3] for r in data.rows],
            title="combined coalescing efficiency",
        )
    )
    print()
    print(
        f"averages: mshr-only {data.summary['avg_mshr_only']:.2%}, "
        f"dmc-only {data.summary['avg_dmc_only']:.2%}, "
        f"combined {data.summary['avg_combined']:.2%}"
    )
    print("paper   : mshr-only 31.53%, dmc-only 38.13%, combined 47.47%")


if __name__ == "__main__":
    main()
