#!/usr/bin/env python3
"""Why coalescing efficiency is not bandwidth efficiency (Figure 10).

HPCG coalesces well over 40% of its requests yet keeps a poor
bandwidth efficiency, because the *actually requested* data per
request is tiny (16 B matrix pairs and 8 B vector gathers).  This
example reproduces the paper's Figure 10 analysis: the distribution of
coalesced HMC requests bucketed by the data actually requested.

Usage::

    python examples/hpcg_request_sizes.py [BENCHMARK] [ACCESSES]
"""

import sys

from repro.analysis.report import format_bar_chart, format_table
from repro.sim.driver import PlatformConfig
from repro.sim.experiments import EvaluationSuite


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "HPCG"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

    suite = EvaluationSuite(PlatformConfig(accesses=accesses))
    data = suite.fig10_request_distribution(benchmark)

    rows = [
        [size, kind, count, f"{share:.2%}"]
        for size, kind, count, share in data.rows
    ]
    print(format_table(data.headers, rows, title=data.description))
    print()
    labels = [f"{r[0]}B {r[1]}" for r in data.rows]
    print(format_bar_chart(labels, [r[3] for r in data.rows], title="share"))
    print()
    print(f"16 B load share: {data.summary['share_16B_loads']:.2%} "
          f"(paper: 40.25% for HPCG)")

    eff = suite.run(benchmark, "combined")
    print(
        f"{benchmark}: coalescing efficiency "
        f"{eff.coalescing_efficiency:.2%} but bandwidth efficiency only "
        f"{eff.bandwidth_efficiency:.2%} -- small sparse requests waste "
        "most of each 64 B line fill."
    )


if __name__ == "__main__":
    main()
